//! Anderson's array-based queue lock: fair, local spinning on a
//! per-waiter array slot (Herlihy & Shavit \[19\], §7.5.1).
//!
//! Included beyond the paper's core four to exercise CLoF's claim of
//! accepting *any* conforming basic lock: Anderson is fair and spins
//! locally like MCS/CLH, but is array-based (bounded capacity, no
//! per-thread queue nodes) — a different implementation family behind
//! the same [`RawLock`] interface.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use crate::pad::CachePadded;
#[cfg(feature = "park")]
use crate::park::ParkSpot;
use crate::park::SPIN_FOREVER;
use crate::raw::{LockInfo, RawLock};
#[cfg(any(not(feature = "park"), feature = "deadline"))]
use crate::spin::Backoff;

/// Maximum concurrent threads per [`AndersonLock`].
///
/// The array lock must size its slot ring up front; `128` covers the
/// paper's largest machine. Exceeding it wraps slots onto waiting threads
/// and would deadlock, so `acquire` asserts the bound in debug builds via
/// the ticket distance.
pub const ANDERSON_SLOTS: usize = 128;

/// Per-slot context: remembers which array slot the holder occupies.
#[derive(Debug, Default)]
pub struct AndersonContext {
    slot: usize,
}

/// Anderson's array lock.
///
/// A thread takes the next slot index with one `fetch_add` and spins on
/// its own (cache-line-padded) flag; release sets the successor slot's
/// flag. FIFO-fair, constant-space per lock (no heap nodes), but capacity
/// bounded by [`ANDERSON_SLOTS`].
///
/// # Examples
///
/// ```
/// use clof_locks::{AndersonLock, RawLock};
///
/// let lock = AndersonLock::default();
/// let mut ctx = Default::default();
/// lock.acquire(&mut ctx);
/// lock.release(&mut ctx);
/// ```
#[derive(Debug)]
pub struct AndersonLock {
    /// Each slot flag on its own cache line: a waiter spins only on its
    /// slot and never stalls its neighbours.
    flags: Box<[CachePadded<AtomicBool>]>,
    /// Waiter-written ticket dispenser (every acquire RMWs it); padded
    /// away from `owner` so dispensing never invalidates the hint word.
    next: CachePadded<AtomicU32>,
    /// Oldest outstanding slot (diagnostics / waiter hint); owner-written.
    owner: CachePadded<AtomicU32>,
    /// One eventcount per slot: a budget-exhausted waiter parks on its
    /// own slot's spot and the releaser wakes exactly the successor slot
    /// — the array lock keeps its precise hand-off even while parked.
    #[cfg(feature = "park")]
    spots: Box<[CachePadded<ParkSpot>]>,
}

impl Default for AndersonLock {
    fn default() -> Self {
        let mut flags = Vec::with_capacity(ANDERSON_SLOTS);
        for i in 0..ANDERSON_SLOTS {
            // Slot 0 starts granted: the first acquirer passes through.
            flags.push(CachePadded::new(AtomicBool::new(i == 0)));
        }
        AndersonLock {
            flags: flags.into_boxed_slice(),
            next: CachePadded::new(AtomicU32::new(0)),
            owner: CachePadded::new(AtomicU32::new(0)),
            #[cfg(feature = "park")]
            spots: (0..ANDERSON_SLOTS)
                .map(|_| CachePadded::new(ParkSpot::new()))
                .collect(),
        }
    }
}

impl AndersonLock {
    /// Creates an unlocked Anderson lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the lock is currently held or queued (racy; diagnostics).
    pub fn is_locked(&self) -> bool {
        self.next.load(Ordering::Relaxed) != self.owner.load(Ordering::Relaxed)
    }

    fn acquire_inner(&self, ctx: &mut AndersonContext, budget: u32) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        debug_assert!(
            ticket.wrapping_sub(self.owner.load(Ordering::Relaxed)) < ANDERSON_SLOTS as u32,
            "AndersonLock capacity ({ANDERSON_SLOTS}) exceeded"
        );
        let slot = ticket as usize % ANDERSON_SLOTS;
        // Acquire pairs with the Release store in `release`.
        #[cfg(feature = "park")]
        self.spots[slot].wait_until(budget, || self.flags[slot].load(Ordering::Acquire));
        #[cfg(not(feature = "park"))]
        {
            let _ = budget;
            let mut backoff = Backoff::new();
            while !self.flags[slot].load(Ordering::Acquire) {
                backoff.snooze();
            }
        }
        // Reset our flag for the next lap of the ring.
        self.flags[slot].store(false, Ordering::Relaxed);
        ctx.slot = slot;
    }

    /// Deadline-bounded acquire: cancel the ticket if we are still the
    /// youngest waiter, otherwise wait out our slot grant and hand the
    /// turn straight to the successor. A granted slot cannot be
    /// abandoned in place — the flag for our lap would be consumed by a
    /// *future* lap's waiter and corrupt the ring hand-off order.
    #[cfg(feature = "deadline")]
    fn try_acquire_inner_deadline(
        &self,
        ctx: &mut AndersonContext,
        deadline: std::time::Instant,
    ) -> bool {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        debug_assert!(
            ticket.wrapping_sub(self.owner.load(Ordering::Relaxed)) < ANDERSON_SLOTS as u32,
            "AndersonLock capacity ({ANDERSON_SLOTS}) exceeded"
        );
        let slot = ticket as usize % ANDERSON_SLOTS;
        crate::chaos::point("and-acquire-slotted");
        // Deadline waits never park: a waiter that may stop listening
        // at any moment must not join the slot's parked-wake protocol.
        let mut poll = crate::deadline::DeadlinePoll::new(deadline, "and-wait");
        let mut backoff = Backoff::new();
        loop {
            if self.flags[slot].load(Ordering::Acquire) {
                self.flags[slot].store(false, Ordering::Relaxed);
                ctx.slot = slot;
                return true;
            }
            if poll.expired() {
                break;
            }
            backoff.snooze();
        }
        // Youngest waiter: put the ticket back. The slot flag for this
        // lap stays consistent even if the grant raced in — then
        // `owner == next` with `flags[next % N]` set, which is exactly
        // the unlocked ring state the next acquirer expects.
        if self
            .next
            .compare_exchange(
                ticket.wrapping_add(1),
                ticket,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            crate::deadline::on_abandon();
            return false;
        }
        // Buried behind a younger waiter: our slot grant is committed,
        // so wait it out and pass the turn straight through.
        crate::chaos::point("and-hand-forward");
        let mut backoff = Backoff::new();
        while !self.flags[slot].load(Ordering::Acquire) {
            backoff.snooze();
        }
        self.flags[slot].store(false, Ordering::Relaxed);
        ctx.slot = slot;
        self.release(ctx);
        crate::deadline::on_abandon();
        false
    }
}

impl RawLock for AndersonLock {
    type Context = AndersonContext;

    const INFO: LockInfo = LockInfo {
        name: "anderson",
        full_name: "Anderson array lock",
        fair: true,
        local_spinning: true,
        needs_context: true,
        waiter_hint: true,
    };

    fn acquire(&self, ctx: &mut AndersonContext) {
        self.acquire_inner(ctx, SPIN_FOREVER);
    }

    #[cfg(feature = "park")]
    fn acquire_budgeted(&self, ctx: &mut AndersonContext, budget: u32) {
        self.acquire_inner(ctx, budget);
    }

    #[cfg(feature = "deadline")]
    fn try_acquire_until(&self, ctx: &mut AndersonContext, deadline: std::time::Instant) -> bool {
        self.try_acquire_inner_deadline(ctx, deadline)
    }

    fn release(&self, ctx: &mut AndersonContext) {
        // Only the current owner advances `owner`, and successive owners
        // are ordered by the slot flag's release→acquire hand-off, so a
        // plain load + store replaces the locked RMW.
        let o = self.owner.load(Ordering::Relaxed);
        self.owner.store(o.wrapping_add(1), Ordering::Relaxed);
        let next = (ctx.slot + 1) % ANDERSON_SLOTS;
        // Release publishes the critical section to the successor's
        // Acquire wait; the wake targets exactly the successor's spot.
        self.flags[next].store(true, Ordering::Release);
        #[cfg(feature = "park")]
        self.spots[next].wake_one();
    }

    fn has_waiters_hint(&self, _ctx: &Self::Context) -> Option<bool> {
        Some(
            self.next
                .load(Ordering::Relaxed)
                .wrapping_sub(self.owner.load(Ordering::Relaxed))
                > 1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrip() {
        let lock = AndersonLock::new();
        let mut ctx = AndersonContext::default();
        assert!(!lock.is_locked());
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        assert_eq!(lock.has_waiters_hint(&ctx), Some(false));
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn ring_wraps_many_laps() {
        let lock = AndersonLock::new();
        let mut ctx = AndersonContext::default();
        for _ in 0..(3 * ANDERSON_SLOTS + 5) {
            lock.acquire(&mut ctx);
            lock.release(&mut ctx);
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(AndersonLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = AndersonContext::default();
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn thread_oblivious_release() {
        let lock = Arc::new(AndersonLock::new());
        let mut ctx = AndersonContext::default();
        lock.acquire(&mut ctx);
        let lock2 = Arc::clone(&lock);
        std::thread::scope(|s| {
            s.spawn(|| {
                lock2.release(&mut ctx);
            });
        });
        let mut ctx2 = AndersonContext::default();
        lock.acquire(&mut ctx2);
        lock.release(&mut ctx2);
    }

    #[test]
    fn waiter_hint_sees_contender() {
        let lock = Arc::new(AndersonLock::new());
        let mut ctx = AndersonContext::default();
        lock.acquire(&mut ctx);
        let waiter = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let mut ctx = AndersonContext::default();
                lock.acquire(&mut ctx);
                lock.release(&mut ctx);
            })
        };
        crate::spin::spin_until(|| lock.has_waiters_hint(&ctx) == Some(true));
        lock.release(&mut ctx);
        waiter.join().unwrap();
    }

    #[test]
    fn info_is_fair_local_array() {
        assert!(AndersonLock::INFO.fair);
        assert!(AndersonLock::INFO.local_spinning);
        assert_eq!(AndersonLock::INFO.name, "anderson");
    }

    #[cfg(feature = "deadline")]
    mod deadline {
        use super::*;
        use std::time::{Duration, Instant};

        #[test]
        fn try_acquire_uncontended_succeeds() {
            let lock = AndersonLock::new();
            let mut ctx = AndersonContext::default();
            let d = Instant::now() + Duration::from_secs(5);
            assert!(lock.try_acquire_until(&mut ctx, d));
            assert!(lock.is_locked());
            lock.release(&mut ctx);
            assert!(!lock.is_locked());
        }

        #[test]
        fn youngest_slot_timeout_cancels_cleanly() {
            let lock = AndersonLock::new();
            let mut holder = AndersonContext::default();
            lock.acquire(&mut holder);
            let before = crate::deadline::abandons();
            let mut w = AndersonContext::default();
            assert!(!lock.try_acquire_until(&mut w, Instant::now()));
            assert!(crate::deadline::abandons() > before);
            // The cancelled ticket is fully returned: only the holder
            // remains outstanding.
            assert_eq!(lock.has_waiters_hint(&holder), Some(false));
            lock.release(&mut holder);
            assert!(!lock.is_locked());
            // The ring is healthy: the same context acquires again.
            lock.acquire(&mut w);
            lock.release(&mut w);
        }

        #[test]
        fn buried_slot_hands_its_turn_forward() {
            let lock = Arc::new(AndersonLock::new());
            let mut holder = AndersonContext::default();
            lock.acquire(&mut holder);
            let w1 = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut ctx = AndersonContext::default();
                    let d = Instant::now() + Duration::from_millis(5);
                    lock.try_acquire_until(&mut ctx, d)
                })
            };
            crate::spin::spin_until(|| lock.has_waiters_hint(&holder) == Some(true));
            let w2 = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut ctx = AndersonContext::default();
                    lock.acquire(&mut ctx);
                    lock.release(&mut ctx);
                })
            };
            crate::spin::spin_until(|| {
                lock.next.load(Ordering::Relaxed).wrapping_sub(lock.owner.load(Ordering::Relaxed))
                    >= 3
            });
            // Let w1's deadline expire while buried, then release: the
            // slot grant must flow holder -> w1 (handed on) -> w2.
            std::thread::sleep(Duration::from_millis(50));
            lock.release(&mut holder);
            assert!(!w1.join().unwrap(), "buried w1 times out");
            w2.join().expect("w2 acquires after the handed-forward slot");
            assert!(!lock.is_locked());
        }

        #[test]
        fn timeout_leaves_other_traffic_unharmed() {
            const THREADS: usize = 4;
            const ITERS: usize = 300;
            let lock = Arc::new(AndersonLock::new());
            let held = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let lock = Arc::clone(&lock);
                let held = Arc::clone(&held);
                handles.push(std::thread::spawn(move || {
                    let mut ctx = AndersonContext::default();
                    for _ in 0..ITERS {
                        let got = if t % 2 == 0 {
                            lock.try_acquire_until(
                                &mut ctx,
                                Instant::now() + Duration::from_micros(50),
                            )
                        } else {
                            lock.acquire(&mut ctx);
                            true
                        };
                        if got {
                            held.fetch_add(1, Ordering::Relaxed);
                            lock.release(&mut ctx);
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(!lock.is_locked());
            // Every successful hold was counted exactly once and the
            // ring still grants: a fresh acquire goes straight through.
            let mut ctx = AndersonContext::default();
            lock.acquire(&mut ctx);
            lock.release(&mut ctx);
        }
    }
}
