//! NUMA-oblivious spinlocks with the CLoF *context abstraction*.
//!
//! This crate is the substrate of the CLoF reproduction (SOSP 2021,
//! Chehab et al.): a family of simple, *NUMA-oblivious* spinlocks exposing
//! one common interface, the [`RawLock`] trait, so that the compositional
//! framework in `clof-core` can stack them into multi-level NUMA-aware
//! locks without knowing anything about their internals.
//!
//! The locks provided here mirror the paper's basic-lock set (§2.1):
//!
//! * [`TicketLock`] — fair, global spinning, no context.
//! * [`McsLock`] — fair, local spinning, context-based (queue node).
//! * [`ClhLock`] — fair, local spinning on the predecessor's node.
//! * [`Hemlock`] / [`HemlockCtr`] — fair, mostly-local spinning, with the
//!   optional x86 Coherence-Traffic-Reduction (CTR) codepath.
//! * [`AndersonLock`] — fair, array-based local spinning (an extra
//!   family beyond the paper's four, exercising the framework's
//!   any-conforming-lock claim).
//! * [`TtasLock`] and [`BackoffLock`] — *unfair* locks, included to
//!   exercise the paper's fairness discussion (§4.2.3): CLoF compositions
//!   are only fair when every component is fair.
//!
//! # Context abstraction
//!
//! The paper distinguishes no-context locks (`NoCtxLockType`, e.g.
//! Ticketlock) from context-based locks (`CtxLockType`, e.g. MCS/CLH),
//! and standardizes both behind one interface. Here, every lock declares
//! an associated [`RawLock::Context`]; no-context locks use the zero-sized
//! [`NoContext`]. The **context invariant** (paper §4.1.3) — a context is
//! never used concurrently for more than one acquire/release — is enforced
//! statically by taking `&mut Context` in [`RawLock::acquire`] and
//! [`RawLock::release`].
//!
//! # Thread-obliviousness
//!
//! All locks here may be *released by a different thread* than the one
//! that acquired them, provided the same context is used — the property
//! CLoF's lock-passing mechanism requires of *high* locks (§4.1.3).
//!
//! # Spinning policy
//!
//! The paper evaluates on dedicated servers with pinned threads. This
//! library is also meant to run tests on small or oversubscribed hosts, so
//! every spin loop uses [`Backoff`]: bounded `spin_loop` hints first, then
//! `std::thread::yield_now`. See `DESIGN.md` §6.

#![warn(missing_docs)]

pub mod anderson;
pub mod backoff_lock;
pub mod chaos;
pub mod clh;
#[cfg(feature = "deadline")]
pub mod deadline;
pub mod hemlock;
pub mod mcs;
pub mod pad;
pub mod park;
pub mod raw;
pub mod spin;
pub mod ticket;
pub mod ttas;

pub use anderson::{AndersonContext, AndersonLock};
pub use backoff_lock::BackoffLock;
pub use clh::{ClhContext, ClhLock};
#[cfg(feature = "deadline")]
pub use deadline::{DeadlinePoll, DEADLINE_MARKER};
pub use hemlock::{HemContext, Hemlock, HemlockCtr};
pub use mcs::{McsContext, McsLock};
pub use pad::{CachePadded, CACHE_LINE};
#[cfg(feature = "park")]
pub use park::{ParkSpot, PARK_MARKER};
pub use park::{Waiter, WaitWord, SPIN_FOREVER};
pub use raw::{LockInfo, NoContext, RawLock};
pub use spin::Backoff;
pub use ticket::TicketLock;
pub use ttas::TtasLock;

/// A convenience mutex wrapping user data with any [`RawLock`].
pub mod mutex;
pub use mutex::{RawLockMutex, RawLockMutexGuard};
