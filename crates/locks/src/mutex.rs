//! A data-holding mutex over any [`RawLock`].

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::raw::RawLock;

/// A mutex protecting `T` with any [`RawLock`] algorithm.
///
/// Convenience wrapper for code that wants `Mutex<T>` ergonomics with one
/// of this crate's spinlocks. Each [`lock`](RawLockMutex::lock) call
/// creates a fresh context; performance-sensitive callers that want to
/// amortize context allocation should use
/// [`lock_with`](RawLockMutex::lock_with) and keep a context per thread.
///
/// # Examples
///
/// ```
/// use clof_locks::{McsLock, RawLockMutex};
///
/// let m: RawLockMutex<McsLock, u64> = RawLockMutex::new(0);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 1);
/// ```
pub struct RawLockMutex<L: RawLock, T: ?Sized> {
    lock: L,
    data: UnsafeCell<T>,
}

// SAFETY: The lock serializes all access to `data`; sending the mutex
// sends the data.
unsafe impl<L: RawLock, T: ?Sized + Send> Send for RawLockMutex<L, T> {}
// SAFETY: Shared access only yields `&T`/`&mut T` under mutual exclusion.
unsafe impl<L: RawLock, T: ?Sized + Send> Sync for RawLockMutex<L, T> {}

impl<L: RawLock, T> RawLockMutex<L, T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        RawLockMutex {
            lock: L::default(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<L: RawLock, T: ?Sized> RawLockMutex<L, T> {
    /// Acquires the lock with a freshly created context.
    pub fn lock(&self) -> RawLockMutexGuard<'_, L, T> {
        self.lock_with(L::Context::default())
    }

    /// Acquires the lock through a caller-provided context.
    ///
    /// The context is returned to the caller when the guard drops only in
    /// the sense that it is freed; to reuse a long-lived context across
    /// acquisitions, use the raw [`RawLock`] interface instead.
    pub fn lock_with(&self, mut ctx: L::Context) -> RawLockMutexGuard<'_, L, T> {
        self.lock.acquire(&mut ctx);
        RawLockMutexGuard { mutex: self, ctx }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<L: RawLock, T: Default> Default for RawLockMutex<L, T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<L: RawLock, T: fmt::Debug> fmt::Debug for RawLockMutex<L, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawLockMutex")
            .field("lock", &L::INFO.name)
            .finish_non_exhaustive()
    }
}

/// RAII guard for [`RawLockMutex`]; releases on drop.
pub struct RawLockMutexGuard<'a, L: RawLock, T: ?Sized> {
    mutex: &'a RawLockMutex<L, T>,
    ctx: L::Context,
}

impl<L: RawLock, T: ?Sized> Deref for RawLockMutexGuard<'_, L, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: The guard proves the lock is held; access is exclusive.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<L: RawLock, T: ?Sized> DerefMut for RawLockMutexGuard<'_, L, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: As in `deref`.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<L: RawLock, T: ?Sized> Drop for RawLockMutexGuard<'_, L, T> {
    fn drop(&mut self) {
        self.mutex.lock.release(&mut self.ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClhLock, Hemlock, McsLock, TicketLock, TtasLock};
    use std::sync::Arc;

    fn hammer<L: RawLock>() {
        const THREADS: usize = 4;
        const ITERS: usize = 1_000;
        let m: Arc<RawLockMutex<L, usize>> = Arc::new(RawLockMutex::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), THREADS * ITERS);
    }

    #[test]
    fn mutex_over_ticket() {
        hammer::<TicketLock>();
    }

    #[test]
    fn mutex_over_mcs() {
        hammer::<McsLock>();
    }

    #[test]
    fn mutex_over_clh() {
        hammer::<ClhLock>();
    }

    #[test]
    fn mutex_over_hemlock() {
        hammer::<Hemlock>();
    }

    #[test]
    fn mutex_over_ttas() {
        hammer::<TtasLock>();
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m: RawLockMutex<TicketLock, Vec<u32>> = RawLockMutex::new(vec![1]);
        m.get_mut().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
