//! Property-based and panic-safety tests for the basic locks.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use clof_locks::{
    AndersonLock, Backoff, ClhLock, Hemlock, HemlockCtr, McsLock, RawLock, RawLockMutex,
    TicketLock, TtasLock,
};
use clof_testkit::gen::{vec_of, Gen};
use clof_testkit::{props, tk_assert, tk_assert_eq, Config};

/// Interleaved lock/unlock schedule across a small thread pool: whatever
/// the schedule, the protected non-atomic counter must equal the number
/// of critical sections.
fn schedule_holds_mutex<L: RawLock>(per_thread_ops: &[u8]) -> Result<(), String> {
    let lock = Arc::new(L::default());
    let counter = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    for &ops in per_thread_ops {
        let lock = Arc::clone(&lock);
        let counter = Arc::clone(&counter);
        threads.push(std::thread::spawn(move || {
            let mut ctx = L::Context::default();
            for _ in 0..ops {
                lock.acquire(&mut ctx);
                let v = counter.load(Ordering::Relaxed);
                // Widen the race window a little.
                std::hint::spin_loop();
                counter.store(v + 1, Ordering::Relaxed);
                lock.release(&mut ctx);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let expected: usize = per_thread_ops.iter().map(|&o| o as usize).sum();
    tk_assert_eq!(counter.load(Ordering::Relaxed), expected);
    Ok(())
}

fn schedules() -> Gen<Vec<u8>> {
    vec_of(Gen::<u8>::int_range(0, 40), 1, 5)
}

props! {
    config: Config::with_cases(12);

    fn ticket_mutex_any_schedule(ops in schedules()) {
        schedule_holds_mutex::<TicketLock>(&ops)?;
    }

    fn mcs_mutex_any_schedule(ops in schedules()) {
        schedule_holds_mutex::<McsLock>(&ops)?;
    }

    fn clh_mutex_any_schedule(ops in schedules()) {
        schedule_holds_mutex::<ClhLock>(&ops)?;
    }

    fn hemlock_mutex_any_schedule(ops in schedules()) {
        schedule_holds_mutex::<Hemlock>(&ops)?;
    }

    fn hemlock_ctr_mutex_any_schedule(ops in schedules()) {
        schedule_holds_mutex::<HemlockCtr>(&ops)?;
    }

    fn anderson_mutex_any_schedule(ops in schedules()) {
        schedule_holds_mutex::<AndersonLock>(&ops)?;
    }

    fn ttas_mutex_any_schedule(ops in schedules()) {
        schedule_holds_mutex::<TtasLock>(&ops)?;
    }

    /// Backoff never panics and always reaches the yielding regime.
    fn backoff_total(steps in Gen::<usize>::int_range(0, 200)) {
        let mut b = Backoff::new();
        for _ in 0..steps {
            b.snooze();
        }
        if steps > 10 {
            tk_assert!(b.is_yielding());
        }
    }
}

/// A panicking critical section must still release the lock (RAII guard),
/// leaving it usable for other threads.
fn guard_releases_on_panic<L: RawLock>() {
    let mutex: Arc<RawLockMutex<L, u32>> = Arc::new(RawLockMutex::new(0));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut guard = mutex.lock();
        *guard += 1;
        panic!("boom");
    }));
    assert!(result.is_err());
    // Lock must be free again: this would hang otherwise.
    assert_eq!(*mutex.lock(), 1);
}

#[test]
fn ticket_guard_panic_safe() {
    guard_releases_on_panic::<TicketLock>();
}

#[test]
fn mcs_guard_panic_safe() {
    guard_releases_on_panic::<McsLock>();
}

#[test]
fn clh_guard_panic_safe() {
    guard_releases_on_panic::<ClhLock>();
}

#[test]
fn hemlock_guard_panic_safe() {
    guard_releases_on_panic::<Hemlock>();
}

#[test]
fn anderson_guard_panic_safe() {
    guard_releases_on_panic::<AndersonLock>();
}

/// FIFO fairness of the ticket lock, observed: with one holder and N
/// queued waiters released one by one, service order equals arrival
/// order.
#[test]
fn ticket_serves_fifo() {
    let lock = Arc::new(TicketLock::new());
    let order = Arc::new(std::sync::Mutex::new(Vec::<usize>::new()));
    let mut ctx = Default::default();
    lock.acquire(&mut ctx);

    let mut joins = Vec::new();
    for i in 0..4 {
        // Serialize arrivals so ticket order is deterministic.
        let before = lock.queue_len();
        let lock2 = Arc::clone(&lock);
        let order2 = Arc::clone(&order);
        joins.push(std::thread::spawn(move || {
            let mut ctx = Default::default();
            lock2.acquire(&mut ctx);
            order2.lock().unwrap().push(i);
            lock2.release(&mut ctx);
        }));
        clof_locks::spin::spin_until(|| lock.queue_len() > before);
    }
    lock.release(&mut ctx);
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
}
