//! Exhaustive composition generation (paper §4.3): all `N^M` CLoF locks.

use clof_topology::Hierarchy;

use crate::dynlock::DynClofLock;
use crate::error::ClofError;
use crate::kind::LockKind;
use crate::level::ClofParams;

/// All `N^M` compositions of `basics` over `levels` hierarchy levels,
/// innermost level first, in lexicographic order of `basics` indices.
///
/// # Examples
///
/// ```
/// use clof::generator::compositions;
/// use clof::kind::LockKind;
///
/// let combos = compositions(&[LockKind::Ticket, LockKind::Mcs], 3);
/// assert_eq!(combos.len(), 8); // N^M = 2^3
/// assert_eq!(combos[0], vec![LockKind::Ticket; 3]);
/// ```
pub fn compositions(basics: &[LockKind], levels: usize) -> Vec<Vec<LockKind>> {
    let n = basics.len();
    if n == 0 || levels == 0 {
        return Vec::new();
    }
    let total = n.checked_pow(levels as u32).expect("N^M overflows usize");
    let mut out = Vec::with_capacity(total);
    for mut index in 0..total {
        let mut combo = Vec::with_capacity(levels);
        for _ in 0..levels {
            combo.push(basics[index % n]);
            index /= n;
        }
        out.push(combo);
    }
    out
}

/// The paper's composition notation: short names joined by `-`, innermost
/// level first (`hem-hem-mcs-clh` = Hemlock at the two innermost levels,
/// MCS above, CLH at the system level).
pub fn composition_name(locks: &[LockKind]) -> String {
    locks
        .iter()
        .map(|k| k.info().name)
        .collect::<Vec<_>>()
        .join("-")
}

/// Parses a composition string (`"tkt-clh-tkt"`) back into kinds.
///
/// The inverse of [`composition_name`]; `hem-ctr` is handled despite the
/// embedded dash.
pub fn parse_composition(name: &str) -> Result<Vec<LockKind>, ClofError> {
    let mut out = Vec::new();
    let mut parts = name.split('-').peekable();
    while let Some(part) = parts.next() {
        // Re-join `hem-ctr`.
        if part == "hem" && parts.peek() == Some(&"ctr") {
            parts.next();
            out.push(LockKind::HemlockCtr);
        } else {
            out.push(LockKind::parse(part)?);
        }
    }
    Ok(out)
}

/// Generates and **builds** every composition of `basics` over
/// `hierarchy` — the paper's "hundreds of multi-level heterogeneous
/// locks" box in Figure 5.
///
/// Unfair basic locks are excluded automatically (the paper restricts
/// itself to fair locks after §4.2.3).
///
/// # Errors
///
/// Propagates build errors (none occur for fair, well-formed inputs).
pub fn generate_all(
    hierarchy: &Hierarchy,
    basics: &[LockKind],
    params: ClofParams,
) -> Result<Vec<DynClofLock>, ClofError> {
    let fair: Vec<LockKind> = basics.iter().copied().filter(|k| k.is_fair()).collect();
    compositions(&fair, hierarchy.level_count())
        .into_iter()
        .map(|combo| DynClofLock::build_with(hierarchy, &combo, params, false))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;

    #[test]
    fn counts_match_paper() {
        // N = 4 basics, M = 4 levels ⇒ 256 (paper §5.2.1); M = 3 ⇒ 64.
        assert_eq!(compositions(&LockKind::PAPER_ARM, 4).len(), 256);
        assert_eq!(compositions(&LockKind::PAPER_X86, 3).len(), 64);
    }

    #[test]
    fn compositions_are_unique() {
        let combos = compositions(&LockKind::PAPER_ARM, 3);
        let mut names: Vec<String> = combos.iter().map(|c| composition_name(c)).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 64);
    }

    #[test]
    fn name_roundtrip() {
        for combo in compositions(&LockKind::PAPER_X86, 2) {
            let name = composition_name(&combo);
            assert_eq!(parse_composition(&name).unwrap(), combo);
        }
    }

    #[test]
    fn hem_ctr_name_parses() {
        let locks = parse_composition("hem-ctr-mcs").unwrap();
        assert_eq!(locks, vec![LockKind::HemlockCtr, LockKind::Mcs]);
        assert_eq!(composition_name(&locks), "hem-ctr-mcs");
    }

    #[test]
    fn empty_inputs() {
        assert!(compositions(&[], 3).is_empty());
        assert!(compositions(&LockKind::PAPER_ARM, 0).is_empty());
    }

    #[test]
    fn generate_all_builds_all_fair_combos() {
        let h = platforms::tiny(); // 3 levels
        let locks = generate_all(&h, &LockKind::PAPER_ARM, ClofParams::default()).unwrap();
        assert_eq!(locks.len(), 64);
        // Unfair basics are filtered, not propagated as errors.
        let with_unfair = generate_all(
            &h,
            &[LockKind::Ticket, LockKind::Ttas],
            ClofParams::default(),
        )
        .unwrap();
        assert_eq!(with_unfair.len(), 1); // only tkt remains ⇒ 1^3
    }

    #[test]
    fn generated_locks_work() {
        let h = platforms::tiny();
        let locks = generate_all(
            &h,
            &[LockKind::Ticket, LockKind::Mcs],
            ClofParams::default(),
        )
        .unwrap();
        assert_eq!(locks.len(), 8);
        for lock in &locks {
            let mut handle = lock.handle(0);
            handle.acquire();
            handle.release();
        }
    }
}
