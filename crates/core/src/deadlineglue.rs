//! Wires the `clof-locks` abandon/skip recorder hooks into `clof-obs`
//! (compiled only when both `deadline` and `obs` are on).
//!
//! Same shape as [`crate::parkglue`]: the locks crate is
//! dependency-free, so its deadline layer exposes bare function-pointer
//! hooks, and [`install`] points them at the process-global counters in
//! [`clof_obs::deadline`]. No thread-local site channel is needed here
//! — abandons and skips are process-wide rate signals (which lock
//! timed out is already answered by the handle-level timeout, which the
//! composed layers attribute through their own obs), so the glue is
//! just two counter forwards.

use std::sync::Once;

/// Installs the abandon/skip recorders (idempotent, first caller wins —
/// called from every telemetry-enabled lock's constructor).
pub(crate) fn install() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        clof_locks::deadline::set_abandon_recorder(Some(on_abandon));
        clof_locks::deadline::set_skip_recorder(Some(on_skip));
    });
}

fn on_abandon() {
    clof_obs::deadline::record_abandon();
}

fn on_skip() {
    clof_obs::deadline::record_skip();
}
