//! The scripted benchmark and selection policies (paper §4.3).
//!
//! After generating all compositions, CLoF benchmarks each one over a
//! grid of contention levels (thread counts) and ranks them with a
//! weighted average of the per-contention throughputs. Two built-in
//! policies mirror the paper: **HC** weights high-contention points more,
//! **LC** weights low-contention points more. The benchmark itself is
//! injected as a closure so the same machinery drives the virtual-time
//! simulator (`clof-sim`), the real KV workloads (`clof-kvstore`), or any
//! user benchmark.

use crate::kind::LockKind;

/// Telemetry summary of one candidate, attached to its [`BenchResult`]
/// when the benchmark runs with the `obs` feature enabled.
///
/// The fields are the two numbers the paper's selection narrative keeps
/// reaching for: how *local* the composition managed to stay (innermost
/// pass rate — high under HC, irrelevant under LC) and what tail latency
/// that locality cost (p99 time to win the innermost low lock). The type
/// itself is unconditional — plain data, no `clof-obs` dependency — so
/// results serialize the same with the feature off (`obs: None`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateObs {
    /// Fraction of release decisions at the innermost level that passed
    /// the lock within the cohort, in `[0, 1]`.
    pub pass_rate: f64,
    /// 99th-percentile acquire latency at the innermost level, in ns.
    pub p99_acquire_ns: u64,
}

/// Throughput of one composition over the contention grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// The composition, innermost level first.
    pub composition: Vec<LockKind>,
    /// `(threads, throughput)` pairs, ascending thread count.
    pub points: Vec<(usize, f64)>,
    /// Telemetry summary, when the benchmark collected one.
    pub obs: Option<CandidateObs>,
}

impl BenchResult {
    /// Composition name in the paper's notation.
    pub fn name(&self) -> String {
        crate::generator::composition_name(&self.composition)
    }

    /// Weighted-average score under `policy` (higher is better).
    pub fn score(&self, policy: &Policy) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &(threads, throughput)) in self.points.iter().enumerate() {
            let w = policy.weight(threads, i, self.points.len());
            num += w * throughput;
            den += w;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }
}

/// A ranking policy: how much each contention level matters.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Favor high contention: weight ∝ thread count (paper's policy (1),
    /// yielding **HC-best**).
    HighContention,
    /// Favor low contention: weight ∝ 1 / thread count (paper's policy
    /// (2), "inverse weighted average", yielding **LC-best**).
    LowContention,
    /// Plain average.
    Uniform,
    /// User-supplied weights, one per grid point (paper: "the selection
    /// policy can be further customized by the user if necessary").
    Custom(Vec<f64>),
}

impl Policy {
    fn weight(&self, threads: usize, index: usize, _len: usize) -> f64 {
        match self {
            Policy::HighContention => threads as f64,
            Policy::LowContention => 1.0 / threads.max(1) as f64,
            Policy::Uniform => 1.0,
            Policy::Custom(w) => w.get(index).copied().unwrap_or(0.0),
        }
    }
}

/// Outcome of ranking: the paper's HC-best / LC-best / worst triple plus
/// the full ordering.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Results sorted best-first under the policy used.
    pub ranked: Vec<BenchResult>,
    /// The policy that produced the ranking.
    pub policy: Policy,
}

impl Selection {
    /// The best composition under the policy.
    pub fn best(&self) -> &BenchResult {
        &self.ranked[0]
    }

    /// The worst composition under the policy (reported "for informative
    /// purpose" in the paper's Figure 9).
    pub fn worst(&self) -> &BenchResult {
        self.ranked.last().expect("ranked is non-empty")
    }
}

/// Ranks benchmark results under `policy` (best first).
///
/// Throughput score decides the order. Exact score ties — common when a
/// coarse grid quantizes several compositions to the same number — break
/// **deterministically** toward the lower innermost-level p99 acquire
/// latency when both candidates carry telemetry ([`BenchResult::obs`]):
/// between two equally fast locks, prefer the one with the better tail.
/// Candidates without telemetry compare equal and keep their input order
/// (the sort is stable), so rankings are reproducible with `obs` off too.
///
/// # Panics
///
/// Panics if `results` is empty or a score is NaN.
pub fn rank(results: &[BenchResult], policy: Policy) -> Selection {
    assert!(!results.is_empty(), "no benchmark results to rank");
    let mut ranked = results.to_vec();
    ranked.sort_by(|a, b| {
        b.score(&policy)
            .partial_cmp(&a.score(&policy))
            .expect("scores must not be NaN")
            .then_with(|| match (&a.obs, &b.obs) {
                (Some(oa), Some(ob)) => oa.p99_acquire_ns.cmp(&ob.p99_acquire_ns),
                _ => std::cmp::Ordering::Equal,
            })
    });
    Selection { ranked, policy }
}

/// Runs the scripted benchmark: evaluates every composition on every
/// contention level through the injected `evaluate` function.
///
/// `evaluate(composition, threads)` must return the measured throughput
/// (higher = better). The paper runs each generated lock under LevelDB
/// with `#runs = 1` and `duration = 1s` per point; the simulator and the
/// host workloads provide equivalents.
pub fn scripted_benchmark(
    compositions: &[Vec<LockKind>],
    thread_grid: &[usize],
    mut evaluate: impl FnMut(&[LockKind], usize) -> f64,
) -> Vec<BenchResult> {
    compositions
        .iter()
        .map(|combo| BenchResult {
            composition: combo.clone(),
            points: thread_grid
                .iter()
                .map(|&t| (t, evaluate(combo, t)))
                .collect(),
            obs: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(kinds: &[LockKind], points: &[(usize, f64)]) -> BenchResult {
        BenchResult {
            composition: kinds.to_vec(),
            points: points.to_vec(),
            obs: None,
        }
    }

    #[test]
    fn hc_prefers_high_contention_winner() {
        // A wins at 128 threads, B wins at 1 thread.
        let a = result(&[LockKind::Mcs], &[(1, 1.0), (128, 10.0)]);
        let b = result(&[LockKind::Ticket], &[(1, 5.0), (128, 2.0)]);
        let hc = rank(&[a.clone(), b.clone()], Policy::HighContention);
        assert_eq!(hc.best().composition, a.composition);
        let lc = rank(&[a, b.clone()], Policy::LowContention);
        assert_eq!(lc.best().composition, b.composition);
    }

    #[test]
    fn worst_is_last() {
        let a = result(&[LockKind::Mcs], &[(1, 1.0)]);
        let b = result(&[LockKind::Ticket], &[(1, 2.0)]);
        let c = result(&[LockKind::Clh], &[(1, 3.0)]);
        let sel = rank(&[a.clone(), b, c], Policy::Uniform);
        assert_eq!(sel.worst().composition, a.composition);
        assert_eq!(sel.ranked.len(), 3);
    }

    #[test]
    fn custom_weights() {
        let a = result(&[LockKind::Mcs], &[(1, 0.0), (2, 100.0)]);
        let b = result(&[LockKind::Ticket], &[(1, 1.0), (2, 0.0)]);
        // Only the first grid point counts.
        let sel = rank(&[a, b.clone()], Policy::Custom(vec![1.0, 0.0]));
        assert_eq!(sel.best().composition, b.composition);
    }

    #[test]
    fn scripted_benchmark_fills_grid() {
        let combos = vec![vec![LockKind::Mcs], vec![LockKind::Ticket]];
        let grid = [1, 4, 16];
        let results = scripted_benchmark(&combos, &grid, |combo, threads| {
            // Deterministic pseudo-throughput.
            (combo[0] as usize + 1) as f64 * threads as f64
        });
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].points.len(), 3);
        assert_eq!(results[0].points[2].0, 16);
    }

    #[test]
    fn equal_scores_break_toward_lower_p99() {
        let mut a = result(&[LockKind::Mcs], &[(1, 5.0), (8, 5.0)]);
        let mut b = result(&[LockKind::Ticket], &[(1, 5.0), (8, 5.0)]);
        a.obs = Some(CandidateObs {
            pass_rate: 0.9,
            p99_acquire_ns: 4_000,
        });
        b.obs = Some(CandidateObs {
            pass_rate: 0.5,
            p99_acquire_ns: 900,
        });
        // Identical throughput everywhere; b's better tail must win,
        // regardless of input order.
        let sel = rank(&[a.clone(), b.clone()], Policy::Uniform);
        assert_eq!(sel.best().composition, b.composition);
        let sel = rank(&[b.clone(), a.clone()], Policy::Uniform);
        assert_eq!(sel.best().composition, b.composition);
        // Higher score still beats better p99.
        let mut c = result(&[LockKind::Clh], &[(1, 6.0), (8, 6.0)]);
        c.obs = Some(CandidateObs {
            pass_rate: 0.1,
            p99_acquire_ns: 1_000_000,
        });
        let sel = rank(&[a, b, c.clone()], Policy::Uniform);
        assert_eq!(sel.best().composition, c.composition);
    }

    #[test]
    fn missing_telemetry_keeps_input_order_on_ties() {
        let a = result(&[LockKind::Mcs], &[(1, 5.0)]);
        let b = result(&[LockKind::Ticket], &[(1, 5.0)]);
        let sel = rank(&[a.clone(), b.clone()], Policy::Uniform);
        assert_eq!(sel.ranked[0].composition, a.composition);
        let sel = rank(&[b.clone(), a], Policy::Uniform);
        assert_eq!(sel.ranked[0].composition, b.composition);
    }

    #[test]
    fn score_handles_empty_points() {
        let r = result(&[LockKind::Mcs], &[]);
        assert_eq!(r.score(&Policy::Uniform), 0.0);
    }

    #[test]
    #[should_panic(expected = "no benchmark results")]
    fn rank_empty_panics() {
        rank(&[], Policy::Uniform);
    }
}
