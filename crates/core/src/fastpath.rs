//! The fast-path extension (paper §6): a test-and-set front lock over a
//! CLoF composition.
//!
//! "Since often only a single thread tries to acquire a spinlock, slow
//! path optimizations should minimally affect the critical path for a
//! single thread. [...] Extending CLoF with the same TAS approach as
//! ShflLock is rather simple." — this module is that extension. An
//! uncontended acquire is one `swap`; under contention, threads order
//! themselves through the full NUMA-aware composition and only the
//! queue's head competes for the test-and-set gate.
//!
//! Trade-off (same as ShflLock's): a fast-path arrival can overtake the
//! queue head, so the lock is only *bounded*-unfair — the gate is
//! contended by at most the head and fresh arrivals, and a fresh arrival
//! that loses falls into the queue behind everyone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "park")]
use std::sync::atomic::AtomicU32;
use std::sync::Arc;

#[cfg(feature = "park")]
use clof_locks::ParkSpot;
#[cfg(any(not(feature = "park"), feature = "deadline"))]
use clof_locks::Backoff;
use clof_locks::CachePadded;
use clof_topology::{CpuId, Hierarchy};

use crate::dynlock::{DynClofLock, DynHandle};
use crate::error::ClofError;
use crate::kind::LockKind;
use crate::level::ClofParams;

/// Telemetry for the TAS gate, paired like `dynlock::nodeobs`: ZST
/// no-ops without the `obs` feature.
///
/// The gate emits `Gate` spans (acquire entry → gate won, flagged
/// fast/slow) and watchdog progress. It deliberately emits no `Hold`
/// span: the slow path holds the composition while spinning on the
/// gate, so a gate-hold span would overlap the composition's own hold
/// spans and break the analyzer's total-order check. Ownership-timeline
/// analysis of a `FastClof` trace therefore describes the slow-path
/// composition; gate decisions are the `Gate` spans.
#[cfg(feature = "obs")]
mod gateobs {
    use std::sync::Arc;

    use clof_obs::registry::SiteAnchor;
    use clof_obs::trace::{self, SpanKind};
    use clof_obs::{now_ns, profile, thread_tag, waitgraph, watchdog};

    use super::FastClof;

    /// Per-handle gate telemetry, attributed to the slow composition's
    /// profiler site (a `FastClof` is one lock to the profiler: the
    /// `tas+`-labelled site). Fast-path wins record their wait/hold
    /// here; slow-path ops are already attributed by the composition
    /// handle they queue through, so only the gate's waits-for
    /// transitions are emitted to avoid double counting.
    #[derive(Debug)]
    pub(super) struct GateObs {
        site: Arc<SiteAnchor>,
        last_fast: bool,
        acquired_at: u64,
    }

    impl GateObs {
        pub(super) fn new(lock: &FastClof) -> Self {
            GateObs {
                site: lock.slow.site_anchor(),
                last_fast: false,
                acquired_at: 0,
            }
        }

        /// Acquire entry: publish `Waiting` and timestamp the gate wait.
        #[inline]
        pub(super) fn start(&mut self) -> u64 {
            watchdog::note_wait(thread_tag());
            waitgraph::note_wait(self.site.id());
            now_ns()
        }

        /// Gate won (either path).
        #[inline]
        pub(super) fn record_gate(&mut self, start: u64, fast: bool) {
            let at = now_ns();
            self.last_fast = fast;
            self.acquired_at = at;
            let site = self.site.id();
            if fast {
                profile::global().record_wait(site, at.saturating_sub(start));
                profile::global().record_acquire(site);
            }
            watchdog::note_hold(thread_tag());
            waitgraph::note_acquired(site);
            if trace::is_enabled() {
                trace::record(start, at, 0, 0, SpanKind::Gate { fast }, 0, 0);
            }
        }

        /// Gate released.
        #[inline]
        pub(super) fn record_release(&mut self) {
            let site = self.site.id();
            if self.last_fast {
                profile::global().record_hold(site, now_ns().saturating_sub(self.acquired_at));
            }
            watchdog::note_idle(thread_tag());
            waitgraph::note_released(site);
        }

        /// The bounded gate wait gave up: the composition was handed
        /// back, nothing is held. Cancels any dangling wait edge and
        /// counts the attempt as a timeout.
        #[cfg(feature = "deadline")]
        #[inline]
        pub(super) fn record_timeout(&mut self) {
            watchdog::note_idle(thread_tag());
            waitgraph::note_wait_cancelled(self.site.id());
            clof_obs::deadline::record_timeout();
        }
    }
}

#[cfg(not(feature = "obs"))]
mod gateobs {
    #[derive(Debug, Default)]
    pub(super) struct GateObs;

    impl GateObs {
        #[inline]
        pub(super) fn new(_lock: &super::FastClof) -> Self {
            GateObs
        }

        #[inline(always)]
        pub(super) fn start(&mut self) -> u64 {
            0
        }

        #[inline(always)]
        pub(super) fn record_gate(&mut self, _start: u64, _fast: bool) {}

        #[inline(always)]
        pub(super) fn record_release(&mut self) {}

        #[cfg(feature = "deadline")]
        #[inline(always)]
        pub(super) fn record_timeout(&mut self) {}
    }
}

/// A CLoF lock with a test-and-set fast path.
///
/// # Examples
///
/// ```
/// use clof::fastpath::FastClof;
/// use clof::LockKind;
/// use clof_topology::platforms;
///
/// let lock = FastClof::build(
///     &platforms::tiny(),
///     &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
/// )
/// .unwrap();
/// let mut handle = lock.handle(0);
/// handle.acquire();
/// handle.release();
/// ```
pub struct FastClof {
    /// The gate that actually protects the critical section. Every
    /// contender `swap`s this word, so it gets a cache line to itself:
    /// gate traffic must not invalidate the path counters (below) or
    /// the composition's read-mostly topology.
    top: CachePadded<AtomicBool>,
    /// Path counters (diagnostics). Written only by the thread that just
    /// won the gate — successive owners are ordered by the gate's
    /// release→acquire hand-off — so plain load + store suffices, and
    /// one shared line for both is fine (same writer).
    paths: CachePadded<PathCounters>,
    /// Eventcount for the gate spinner. At most one thread (the slow
    /// path's composition owner) ever waits here, so `wake_one` on
    /// release is exact. Own line: wake traffic must not bounce the
    /// gate word.
    #[cfg(feature = "park")]
    gate_park: CachePadded<ParkSpot>,
    /// Spin rounds before the gate spinner parks. The gate is contended
    /// machine-wide, so it gets the top level's (smallest) budget.
    #[cfg(feature = "park")]
    gate_budget: AtomicU32,
    /// NUMA-aware ordering of contenders.
    slow: DynClofLock,
}

#[derive(Debug, Default)]
struct PathCounters {
    fast: AtomicU64,
    slow: AtomicU64,
}

// The gate word and the owner-written counters may not share a line.
const _: () = assert!(std::mem::size_of::<CachePadded<AtomicBool>>() == clof_locks::CACHE_LINE);
const _: () = assert!(std::mem::size_of::<CachePadded<PathCounters>>() == clof_locks::CACHE_LINE);

impl FastClof {
    /// Builds the fast-path lock over `locks` on `hierarchy`.
    ///
    /// # Errors
    ///
    /// Propagates [`DynClofLock::build`] errors.
    #[track_caller]
    pub fn build(hierarchy: &Hierarchy, locks: &[LockKind]) -> Result<Arc<Self>, ClofError> {
        Self::build_with(hierarchy, locks, ClofParams::default())
    }

    /// Builds with explicit composition parameters.
    #[track_caller]
    pub fn build_with(
        hierarchy: &Hierarchy,
        locks: &[LockKind],
        params: ClofParams,
    ) -> Result<Arc<Self>, ClofError> {
        let slow = DynClofLock::build_with(hierarchy, locks, params, false)?;
        // The profiler sees one lock: relabel the composition's site
        // with the fast-path prefix the exports use.
        #[cfg(feature = "obs")]
        slow.relabel_site(&format!("tas+{}", slow.name()));
        Ok(Arc::new(FastClof {
            top: CachePadded::new(AtomicBool::new(false)),
            paths: CachePadded::new(PathCounters::default()),
            #[cfg(feature = "park")]
            gate_park: CachePadded::new(ParkSpot::new()),
            #[cfg(feature = "park")]
            gate_budget: AtomicU32::new(crate::level::spin_budget_for_span(
                hierarchy.cohort_span(hierarchy.level_count() - 1),
            )),
            slow,
        }))
    }

    /// Spin rounds the slow path's gate spinner burns before parking.
    #[cfg(feature = "park")]
    pub fn gate_spin_budget(&self) -> u32 {
        self.gate_budget.load(Ordering::Relaxed)
    }

    /// Retunes the gate spinner's budget ([`clof_locks::SPIN_FOREVER`]
    /// turns gate parking off). Policy-only; never affects correctness.
    #[cfg(feature = "park")]
    pub fn set_gate_spin_budget(&self, rounds: u32) {
        self.gate_budget.store(rounds, Ordering::Relaxed);
    }

    /// A per-thread handle entering at `cpu`'s leaf cohort.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for the hierarchy.
    pub fn handle(self: &Arc<Self>, cpu: CpuId) -> FastClofHandle {
        FastClofHandle {
            lock: Arc::clone(self),
            slow: self.slow.handle(cpu),
            obs: gateobs::GateObs::new(self),
        }
    }

    /// Composition name of the slow path, e.g. `"mcs-clh-tkt"`.
    pub fn name(&self) -> String {
        format!("tas+{}", self.slow.name())
    }

    /// `(fast_path_acquires, slow_path_acquires)` so far.
    pub fn path_counters(&self) -> (u64, u64) {
        (
            self.paths.fast.load(Ordering::Relaxed),
            self.paths.slow.load(Ordering::Relaxed),
        )
    }

    /// Owner-only counter bump: callers hold the gate, so successive
    /// increments are ordered by its release→acquire edge.
    #[inline]
    fn bump(counter: &AtomicU64) {
        let v = counter.load(Ordering::Relaxed);
        counter.store(v + 1, Ordering::Relaxed);
    }

    /// Telemetry snapshot of the slow path (the composition); the TAS
    /// gate itself contributes only [`Self::path_counters`]. The
    /// snapshot's name carries the `tas+` prefix so exports distinguish
    /// the fast-path variant.
    #[cfg(feature = "obs")]
    pub fn obs_snapshot(&self) -> clof_obs::LockSnapshot {
        let mut snap = self.slow.obs_snapshot();
        snap.name = self.name();
        snap
    }

    /// The contention-profiler site id shared with the slow composition
    /// (labelled `tas+…` in the registry).
    #[cfg(feature = "obs")]
    pub fn site_id(&self) -> u32 {
        self.slow.site_id()
    }

    /// The current contention-profile row for this lock's site.
    #[cfg(feature = "obs")]
    pub fn site_profile(&self) -> Option<clof_obs::SiteProfile> {
        self.slow.site_profile()
    }

    /// Marks the protected state suspect (a holder panicked); delegates
    /// to the slow composition's flag — the gate carries no state of
    /// its own. See [`DynClofLock::poison`].
    #[cfg(feature = "deadline")]
    pub fn poison(&self) {
        self.slow.poison();
    }

    /// Whether a holder has panicked while holding this lock.
    #[cfg(feature = "deadline")]
    pub fn is_poisoned(&self) -> bool {
        self.slow.is_poisoned()
    }

    /// Clears the poison flag; see [`DynClofLock::clear_poison`].
    #[cfg(feature = "deadline")]
    pub fn clear_poison(&self) {
        self.slow.clear_poison()
    }

    #[inline]
    fn try_top(&self) -> bool {
        // Test-and-test-and-set to keep the failed fast path cheap.
        !self.top.load(Ordering::Relaxed) && !self.top.swap(true, Ordering::Acquire)
    }
}

/// Per-thread handle on a [`FastClof`].
pub struct FastClofHandle {
    lock: Arc<FastClof>,
    slow: DynHandle,
    obs: gateobs::GateObs,
}

impl FastClofHandle {
    /// Acquires the lock (one `swap` when uncontended).
    pub fn acquire(&mut self) {
        let start = self.obs.start();
        if self.lock.try_top() {
            FastClof::bump(&self.lock.paths.fast);
            self.obs.record_gate(start, true);
            return;
        }
        // Slow path: order through the CLoF composition, then, as the
        // composition's owner, win the gate and hand the composition to
        // the next NUMA-local waiter (who becomes the new gate spinner).
        self.slow.acquire();
        // Same shape as `TtasLock::acquire_inner`: the park condition is
        // a *pure* read of the gate word (ParkSpot conditions must be
        // side-effect-free — see its docs), and the actual TAS runs in
        // the outer loop. A fast-path thief who outraces the woken
        // spinner just sends it back into `wait_until`, and the thief's
        // own release re-arms the wake.
        #[cfg(feature = "park")]
        loop {
            self.lock.gate_park.wait_until(
                self.lock.gate_budget.load(Ordering::Relaxed),
                || !self.lock.top.load(Ordering::Relaxed),
            );
            if self.lock.try_top() {
                break;
            }
        }
        #[cfg(not(feature = "park"))]
        {
            let mut backoff = Backoff::new();
            while !self.lock.try_top() {
                backoff.snooze();
            }
        }
        self.slow.release();
        FastClof::bump(&self.lock.paths.slow);
        self.obs.record_gate(start, false);
    }

    /// Deadline-bounded acquire: the fast path is a single attempt, the
    /// slow path spends the shared budget first on the composition and
    /// then on a *bounded* gate spin (spin-only, never parked — a
    /// deadline wait must stay wakeable by the clock alone). On gate
    /// expiry the composition is released back to the next NUMA-local
    /// waiter: the gate grants nothing positionally, so giving up is
    /// just handing the slow path on — no queue state can leak.
    #[cfg(feature = "deadline")]
    pub fn try_acquire_until(&mut self, deadline: std::time::Instant) -> bool {
        let start = self.obs.start();
        if self.lock.try_top() {
            FastClof::bump(&self.lock.paths.fast);
            self.obs.record_gate(start, true);
            return true;
        }
        if !self.slow.try_acquire_until(deadline) {
            // The composed attempt unwound itself and already counted
            // its own timeout (the handle and gate share a site, so the
            // wait edge is cancelled too).
            return false;
        }
        let mut poll = clof_locks::DeadlinePoll::new(deadline, "fast-gate");
        let mut backoff = Backoff::new();
        loop {
            if self.lock.try_top() {
                break;
            }
            if poll.expired() {
                self.slow.release();
                clof_locks::deadline::note_abandon();
                self.obs.record_timeout();
                return false;
            }
            backoff.snooze();
        }
        self.slow.release();
        FastClof::bump(&self.lock.paths.slow);
        self.obs.record_gate(start, false);
        true
    }

    /// [`try_acquire_until`](Self::try_acquire_until) with a relative
    /// budget measured from now.
    #[cfg(feature = "deadline")]
    pub fn try_acquire_for(&mut self, budget: std::time::Duration) -> bool {
        self.try_acquire_until(std::time::Instant::now() + budget)
    }

    /// Releases the lock.
    ///
    /// Must only be called while held through this handle.
    pub fn release(&mut self) {
        self.obs.record_release();
        self.lock.top.store(false, Ordering::Release);
        #[cfg(feature = "park")]
        self.lock.gate_park.wake_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;
    use std::sync::atomic::AtomicUsize;

    fn build_tiny() -> Arc<FastClof> {
        FastClof::build(
            &platforms::tiny(),
            &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        )
        .unwrap()
    }

    #[test]
    fn uncontended_uses_fast_path() {
        let lock = build_tiny();
        let mut handle = lock.handle(0);
        for _ in 0..100 {
            handle.acquire();
            handle.release();
        }
        let (fast, slow) = lock.path_counters();
        assert_eq!(fast, 100);
        assert_eq!(slow, 0);
    }

    #[test]
    fn name_reflects_structure() {
        let lock = build_tiny();
        assert_eq!(lock.name(), "tas+mcs-clh-tkt");
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 6;
        const ITERS: usize = 1_200;
        let lock = build_tiny();
        let counter = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::new();
        for t in 0..THREADS {
            let mut handle = lock.handle(t % 8);
            let counter = Arc::clone(&counter);
            workers.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
        let (fast, slow) = lock.path_counters();
        assert_eq!(fast + slow, (THREADS * ITERS) as u64);
    }

    #[test]
    fn contended_acquire_takes_slow_path() {
        // Forced contention: hold the gate while a second thread
        // acquires — it must go through the composition. (A statistical
        // version is flaky on single-CPU hosts, where threads rarely
        // overlap.)
        let lock = build_tiny();
        let mut holder = lock.handle(0);
        holder.acquire();
        let started = Arc::new(AtomicUsize::new(0));
        let contender = {
            let lock = Arc::clone(&lock);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut handle = lock.handle(4);
                started.store(1, Ordering::Release);
                handle.acquire();
                handle.release();
            })
        };
        // Let the contender fail the fast path and park in the slow path
        // before releasing; if the grace period were ever too short, the
        // contender would fast-path and the assertion below would flag it.
        while started.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        holder.release();
        contender.join().unwrap();
        let (_, slow) = lock.path_counters();
        assert_eq!(slow, 1);
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn deadline_timeout_releases_composition_back() {
        use std::time::{Duration, Instant};
        let lock = build_tiny();
        let mut holder = lock.handle(0);
        holder.acquire();
        // The contender wins the composition, spins on the held gate,
        // expires, and must hand the composition back on its way out.
        let mut contender = lock.handle(4);
        let start = Instant::now();
        assert!(!contender.try_acquire_until(start + Duration::from_millis(40)));
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(
            lock.slow.queue_depth_hint(),
            0,
            "timed-out gate spinner kept composition state"
        );
        // A second contender can still traverse the slow path end to
        // end — the composition was not left held by the quitter.
        let second = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let mut handle = lock.handle(2);
                assert!(handle.try_acquire_until(Instant::now() + Duration::from_secs(10)));
                handle.release();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        holder.release();
        second.join().unwrap();
        // And the quitter itself recovers.
        assert!(contender.try_acquire_for(Duration::from_secs(10)));
        contender.release();
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn deadline_uncontended_try_is_fast_path() {
        let lock = build_tiny();
        let mut handle = lock.handle(0);
        assert!(handle.try_acquire_for(std::time::Duration::from_secs(10)));
        handle.release();
        let (fast, slow) = lock.path_counters();
        assert_eq!((fast, slow), (1, 0));
    }

    #[test]
    fn composition_errors_propagate() {
        let err = FastClof::build(&platforms::tiny(), &[LockKind::Mcs]);
        assert!(err.is_err());
        let err = FastClof::build(
            &platforms::tiny(),
            &[LockKind::Mcs, LockKind::Ttas, LockKind::Ticket],
        );
        assert!(err.is_err());
    }
}
