//! Online adaptive selection: hot-swapping a live composed lock.
//!
//! The paper's selection step (§5) picks the best composition *offline*;
//! this module makes the pick revisable at runtime. An [`AdaptiveLock`]
//! owns a live [`DynClofLock`] and can migrate every thread to a
//! different composition — a different tree, possibly on a different
//! dispatch tier — without ever breaking mutual exclusion or the §4.1
//! context invariant.
//!
//! # Handover protocol
//!
//! Three shared words drive the migration, all `SeqCst`:
//!
//! * `epoch` — a generation counter. Its parity selects which of two
//!   tree slots is current. The controller bumps it to *funnel* new
//!   acquirers to the incoming tree.
//! * `entrants` — two striped read-indicator sets (the PR-4 striping
//!   technique, one set per generation parity). A thread registers
//!   before acquiring and deregisters after releasing, so the set's
//!   occupancy is the *quiescence check* for the outgoing tree.
//! * `baton` — the generation that currently owns the right to run
//!   critical sections. Ownership moves to the incoming generation
//!   exactly once, by compare-exchange, and only at quiescence.
//!
//! Acquire: load `epoch` → register in that generation's entrant set →
//! re-check `epoch` (back out and retry if it moved — the Dekker-style
//! re-check makes the funnel airtight: a registration that passes it is
//! ordered before any flip that would drain it) → wait until `baton`
//! equals the admitted generation → acquire the generation's tree.
//!
//! Release: release the tree → deregister → if the epoch has moved past
//! the held generation and the outgoing entrant set is empty, hand the
//! baton over with `compare_exchange(old, old + 1)`. The controller
//! polls the same CAS so an *idle* lock (no releaser left to do the
//! hand-off) still migrates.
//!
//! Why this is safe: the baton never advances past generation `g` while
//! any `g`-entrant is registered, and a thread only enters a critical
//! section while holding its generation's tree *and* its generation
//! holds the baton. Mutual exclusion within a generation is the tree's
//! own; across generations it is the baton's. The last old-generation
//! owner's critical-section writes are published to the first
//! new-generation owner over the baton's release→acquire edge (CAS by
//! the releaser itself, or `SeqCst` dec → controller load → CAS). The
//! §4.1 context invariant is per-tree state, and no thread ever runs
//! one tree's protocol with another tree's contexts, so it holds across
//! the swap by construction.
//!
//! Everything here is additive: the default build compiles none of this
//! module, and an un-adapted `DynClofLock`'s hot path is untouched.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, RwLock};

use clof_locks::{chaos, CachePadded};
use clof_topology::{CpuId, Hierarchy};

use crate::dynlock::{DispatchTier, DynClofLock, DynHandle};
use crate::error::ClofError;
use crate::kind::LockKind;
use crate::level::ClofParams;

/// Stripes per entrant set; matches the level-meta striping width.
const ENTRANT_STRIPES: usize = 8;

/// Spin iterations between `yield_now` calls in the wait loops.
const SPINS_PER_YIELD: u64 = 64;

/// Testkit-only stall bound for the baton/drain wait loops. Real drains
/// complete in microseconds; a protocol mutant that never hands the
/// baton over trips this instead of hanging the suite.
#[cfg(feature = "testkit")]
const STALL_BOUND: u64 = 1 << 22;

/// One striped read-indicator set: occupancy of a generation.
///
/// Same cache-line striping as the level read indicators from the
/// striped-indicator work, but `SeqCst`: the migration argument is a
/// Dekker-style store-buffering pattern (register ∥ epoch flip), which
/// relaxed stripes would not support.
struct EntrantSet {
    stripes: [CachePadded<AtomicU64>; ENTRANT_STRIPES],
}

impl EntrantSet {
    fn new() -> Self {
        EntrantSet {
            stripes: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
        }
    }

    #[inline]
    fn register(&self, stripe: usize) {
        self.stripes[stripe].fetch_add(1, SeqCst);
    }

    #[inline]
    fn deregister(&self, stripe: usize) {
        self.stripes[stripe].fetch_sub(1, SeqCst);
    }

    /// Sum over stripes. Zero is trustworthy under the protocol's
    /// ordering: any registration that passed its epoch re-check is
    /// `SeqCst`-ordered before the flip, hence visible to every
    /// post-flip occupancy scan until its paired deregister — and a
    /// concurrent deregister means that thread already left its
    /// critical section, so treating it as gone is exactly right.
    fn occupancy(&self) -> u64 {
        self.stripes.iter().map(|s| s.load(SeqCst)).sum()
    }
}

/// Deliberately broken handover variants for the mutant-kill suite.
///
/// Each deletes one load-bearing step of the protocol; the schedule-
/// fuzzing oracle must catch every one of them with a named seed.
#[cfg(feature = "testkit")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationMutant {
    /// The full protocol (control).
    None,
    /// The controller hands the baton over immediately after the epoch
    /// flip, skipping the quiescence drain entirely.
    SkipDrain,
    /// The release-side hand-off fires on *every* old-generation
    /// release during a migration (a plain store), instead of exactly
    /// once at quiescence via the guarded CAS — the flip is armed twice.
    DoubleArm,
    /// The epoch flips and the outgoing tree drains, but nobody ever
    /// transfers the baton: the swap "completes" without transferring
    /// ownership, wedging every incoming acquirer.
    NoHandoff,
}

#[cfg(feature = "testkit")]
impl MigrationMutant {
    fn from_u64(v: u64) -> Self {
        match v {
            1 => MigrationMutant::SkipDrain,
            2 => MigrationMutant::DoubleArm,
            3 => MigrationMutant::NoHandoff,
            _ => MigrationMutant::None,
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            MigrationMutant::None => 0,
            MigrationMutant::SkipDrain => 1,
            MigrationMutant::DoubleArm => 2,
            MigrationMutant::NoHandoff => 3,
        }
    }
}

/// Cumulative migration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Completed hand-overs.
    pub swaps: u64,
    /// Wall-clock nanoseconds of the most recent swap, from the build
    /// of the incoming tree to observed baton arrival.
    pub last_switch_ns: u64,
    /// Sum of all switch latencies (ns).
    pub total_switch_ns: u64,
}

impl MigrationStats {
    /// Mean switch latency in nanoseconds (0 when no swap happened).
    pub fn mean_switch_ns(&self) -> u64 {
        if self.swaps == 0 {
            0
        } else {
            self.total_switch_ns / self.swaps
        }
    }
}

/// A composed lock whose composition can be hot-swapped at runtime.
///
/// Wraps a live [`DynClofLock`]; [`swap_to`](Self::swap_to) migrates
/// every thread to a new composition via the epoch/quiescence handover
/// described in the module docs. Handles ([`AdaptHandle`]) follow the
/// migration automatically — including across dispatch tiers, because
/// each generation's tree resolves its own fast tier at build time and
/// handles are re-created per generation.
pub struct AdaptiveLock {
    hierarchy: Hierarchy,
    params: ClofParams,
    allow_unfair: bool,
    /// Generation counter; parity selects the current tree slot.
    epoch: AtomicU64,
    /// Generation that owns the right to run critical sections.
    baton: AtomicU64,
    /// Striped entrant indicators, one set per generation parity.
    entrants: [EntrantSet; 2],
    /// Tree slots by generation parity. The write lock is only taken by
    /// the (serialized) controller to install an incoming tree, always
    /// on the *other* parity than any admitted reader, so slot reads
    /// never block.
    slots: [RwLock<Arc<DynClofLock>>; 2],
    /// Serializes migrations: at most one in flight.
    swap_serial: Mutex<()>,
    swaps: AtomicU64,
    last_switch_ns: AtomicU64,
    total_switch_ns: AtomicU64,
    #[cfg(feature = "testkit")]
    mutant: AtomicU64,
}

impl AdaptiveLock {
    /// An adaptive lock starting at `kinds`, with default parameters
    /// and unfair components permitted (mirrors [`DynClofLock::build`]).
    ///
    /// # Errors
    ///
    /// Propagates composition errors from the initial tree build.
    #[track_caller]
    pub fn new(hierarchy: &Hierarchy, kinds: &[LockKind]) -> Result<Self, ClofError> {
        Self::with_params(hierarchy, kinds, ClofParams::default(), true)
    }

    /// [`new`](Self::new) with explicit tuning. `params` and
    /// `allow_unfair` apply to the initial tree and to every tree a
    /// later [`swap_to`](Self::swap_to) builds.
    ///
    /// # Errors
    ///
    /// Propagates composition errors from the initial tree build.
    #[track_caller]
    pub fn with_params(
        hierarchy: &Hierarchy,
        kinds: &[LockKind],
        params: ClofParams,
        allow_unfair: bool,
    ) -> Result<Self, ClofError> {
        let tree = Arc::new(DynClofLock::build_with(hierarchy, kinds, params, allow_unfair)?);
        Ok(AdaptiveLock {
            hierarchy: hierarchy.clone(),
            params,
            allow_unfair,
            epoch: AtomicU64::new(0),
            baton: AtomicU64::new(0),
            entrants: [EntrantSet::new(), EntrantSet::new()],
            // Both slots start at the generation-0 tree; parity 1 is
            // overwritten before it can ever be read as current.
            slots: [RwLock::new(Arc::clone(&tree)), RwLock::new(tree)],
            swap_serial: Mutex::new(()),
            swaps: AtomicU64::new(0),
            last_switch_ns: AtomicU64::new(0),
            total_switch_ns: AtomicU64::new(0),
            #[cfg(feature = "testkit")]
            mutant: AtomicU64::new(0),
        })
    }

    fn slot(&self, generation: u64) -> &RwLock<Arc<DynClofLock>> {
        &self.slots[(generation & 1) as usize]
    }

    fn entrants(&self, generation: u64) -> &EntrantSet {
        &self.entrants[(generation & 1) as usize]
    }

    /// A per-thread handle for a thread running on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics (on first acquire) if `cpu` is outside the hierarchy.
    pub fn handle(self: &Arc<Self>, cpu: CpuId) -> AdaptHandle {
        AdaptHandle {
            lock: Arc::clone(self),
            cpu,
            stripe: cpu % ENTRANT_STRIPES,
            generation: u64::MAX,
            inner: None,
            held: None,
        }
    }

    /// The tree currently receiving acquirers. Racy by nature (a swap
    /// may complete concurrently); meant for observation, not locking.
    pub fn current(&self) -> Arc<DynClofLock> {
        let generation = self.epoch.load(SeqCst);
        Arc::clone(&self.slot(generation).read().expect("slot poisoned"))
    }

    /// Current composition, innermost first.
    pub fn composition(&self) -> Vec<LockKind> {
        self.current().composition().to_vec()
    }

    /// Current composition name in the paper's notation.
    pub fn name(&self) -> String {
        self.current().name().to_string()
    }

    /// Dispatch tier of the current tree — swaps may move between
    /// [`DispatchTier::Monomorphized`] and [`DispatchTier::Generic`].
    pub fn dispatch_tier(&self) -> DispatchTier {
        self.current().dispatch_tier()
    }

    /// The current generation counter (bumped once per swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Cumulative migration statistics.
    pub fn migration_stats(&self) -> MigrationStats {
        MigrationStats {
            swaps: self.swaps.load(SeqCst),
            last_switch_ns: self.last_switch_ns.load(SeqCst),
            total_switch_ns: self.total_switch_ns.load(SeqCst),
        }
    }

    /// Telemetry snapshot of the *current* tree. Counters restart from
    /// zero on every swap (it is a new tree); `obs::Sampler` detects
    /// the reset and re-baselines instead of producing garbage deltas.
    #[cfg(feature = "obs")]
    pub fn obs_snapshot(&self) -> clof_obs::LockSnapshot {
        self.current().obs_snapshot()
    }

    /// The contention-profiler site id of the current generation's tree
    /// — stable across swaps, because every incoming tree adopts the
    /// outgoing one's site.
    #[cfg(feature = "obs")]
    pub fn site_id(&self) -> u32 {
        self.current().site_id()
    }

    /// The current contention-profile row for the lock's site.
    #[cfg(feature = "obs")]
    pub fn site_profile(&self) -> Option<clof_obs::SiteProfile> {
        self.current().site_profile()
    }

    /// Arms a deliberately broken handover for the mutant-kill suite.
    #[cfg(feature = "testkit")]
    pub fn set_migration_mutant(&self, mutant: MigrationMutant) {
        self.mutant.store(mutant.as_u64(), SeqCst);
    }

    #[cfg(feature = "testkit")]
    fn mutant(&self) -> MigrationMutant {
        MigrationMutant::from_u64(self.mutant.load(SeqCst))
    }

    /// Migrates the lock to `kinds`. Returns `Ok(false)` if the current
    /// composition already is `kinds` (no swap), `Ok(true)` after a
    /// completed hand-over. Blocks until the outgoing tree has drained
    /// and the baton has arrived at the incoming generation; concurrent
    /// `swap_to` calls serialize.
    ///
    /// # Errors
    ///
    /// Propagates composition errors from building the incoming tree;
    /// the live lock is untouched on error.
    pub fn swap_to(&self, kinds: &[LockKind]) -> Result<bool, ClofError> {
        let _serial = self
            .swap_serial
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let old = self.epoch.load(SeqCst);
        if *self.slot(old).read().expect("slot poisoned").composition() == *kinds {
            return Ok(false);
        }
        let started = std::time::Instant::now();
        let incoming = match DynClofLock::build_with(
            &self.hierarchy,
            kinds,
            self.params,
            self.allow_unfair,
        ) {
            Ok(lock) => Arc::new(lock),
            Err(e) => {
                #[cfg(feature = "obs")]
                clof_obs::audit::global().record(
                    0.0,
                    0.0,
                    old as u32,
                    old as u32,
                    0.0,
                    0,
                    clof_obs::audit::AuditReason::MigrationFailed,
                    0,
                );
                return Err(e);
            }
        };
        // Keep the contention-profiler site stable across the swap: the
        // incoming tree adopts the outgoing generation's site id (its
        // own provisional registration is released; the site label
        // follows the new composition). A failed build above never gets
        // here, so error paths leave the registry untouched.
        #[cfg(feature = "obs")]
        {
            let outgoing = self.slot(old).read().expect("slot poisoned");
            incoming.rebind_site_from(&outgoing);
        }
        // Carry the waiting policy across the swap: any runtime-retuned
        // spin budgets survive on the incoming tree (levels beyond the
        // shorter composition keep their own topology-derived defaults).
        #[cfg(feature = "park")]
        {
            let outgoing = self.slot(old).read().expect("slot poisoned");
            for (level, rounds) in outgoing.spin_budgets() {
                if level < incoming.composition().len() {
                    incoming.set_spin_budget(level, rounds);
                }
            }
        }
        let new = old + 1;
        *self.slot(new).write().expect("slot poisoned") = incoming;

        #[cfg(feature = "obs")]
        let flow = self.trace_migration_armed();

        // Funnel flip: from here on, every fresh acquirer registers for
        // (and queues on) the incoming tree.
        chaos::point("adapt-flip");
        self.epoch.store(new, SeqCst);

        #[cfg(feature = "testkit")]
        match self.mutant() {
            MigrationMutant::SkipDrain => {
                // MUTANT: transfer ownership immediately — no drain.
                self.baton.store(new, SeqCst);
                self.finish_swap(started);
                return Ok(true);
            }
            MigrationMutant::NoHandoff => {
                // MUTANT: drain, then walk away without the baton CAS
                // (nor will any releaser do it — the CAS is this same
                // protocol step). Incoming acquirers wedge.
                self.drain(old);
                self.finish_swap(started);
                return Ok(true);
            }
            MigrationMutant::DoubleArm | MigrationMutant::None => {}
        }

        // Quiescence drain: wait out every thread admitted to the old
        // generation. Their registrations are SeqCst-ordered before the
        // flip (the acquire-side re-check), so the occupancy scan
        // cannot miss one.
        self.drain(old);
        debug_assert_eq!(
            self.slot(old)
                .read()
                .expect("slot poisoned")
                .queue_depth_hint(),
            0,
            "outgoing tree still has queued waiters after the entrant drain"
        );
        // Hand-off, exactly once: the last releaser may already have
        // done it (its CAS and ours race benignly — one wins).
        chaos::point("adapt-handoff");
        let _ = self.baton.compare_exchange(old, new, SeqCst, SeqCst);
        self.await_baton(new);

        #[cfg(feature = "obs")]
        self.trace_migration_done(flow);

        self.finish_swap(started);
        // Audit the completed hand-over (generation indices + measured
        // switch latency) so `/snapshot` and `clof top` can show *when*
        // the lock migrated next to the policy decisions that caused it.
        #[cfg(feature = "obs")]
        clof_obs::audit::global().record(
            0.0,
            0.0,
            old as u32,
            new as u32,
            0.0,
            0,
            clof_obs::audit::AuditReason::MigrationDone,
            self.last_switch_ns.load(SeqCst),
        );
        Ok(true)
    }

    /// Spins until the old generation's entrant set is empty.
    fn drain(&self, old: u64) {
        let mut spins: u64 = 0;
        while self.entrants(old).occupancy() != 0 {
            chaos::point("adapt-drain");
            Self::relax(&mut spins, "outgoing tree failed to drain");
        }
    }

    /// Spins until the baton reaches `generation`.
    fn await_baton(&self, generation: u64) {
        let mut spins: u64 = 0;
        while self.baton.load(SeqCst) != generation {
            Self::relax(&mut spins, "baton never arrived at the incoming generation");
        }
    }

    #[inline]
    fn relax(spins: &mut u64, _what: &str) {
        *spins += 1;
        if *spins % SPINS_PER_YIELD == 0 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
        #[cfg(feature = "testkit")]
        assert!(
            *spins < STALL_BOUND,
            "clof-adapt handover stalled: {_what}"
        );
    }

    fn finish_swap(&self, started: std::time::Instant) {
        let ns = started.elapsed().as_nanos() as u64;
        self.last_switch_ns.store(ns, SeqCst);
        self.total_switch_ns.fetch_add(ns, SeqCst);
        self.swaps.fetch_add(1, SeqCst);
    }

    #[cfg(feature = "obs")]
    fn trace_migration_armed(&self) -> u64 {
        use clof_obs::trace;
        if !trace::is_enabled() {
            return 0;
        }
        let t = clof_obs::now_ns();
        let flow = trace::next_flow_id();
        trace::record(
            t,
            t,
            0,
            0,
            clof_obs::SpanKind::Migrate { complete: false },
            0,
            flow,
        );
        flow
    }

    #[cfg(feature = "obs")]
    fn trace_migration_done(&self, flow: u64) {
        use clof_obs::trace;
        if !trace::is_enabled() {
            return;
        }
        let t = clof_obs::now_ns();
        trace::record(
            t,
            t,
            0,
            0,
            clof_obs::SpanKind::Migrate { complete: true },
            flow,
            0,
        );
    }
}

impl std::fmt::Debug for AdaptiveLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveLock")
            .field("name", &self.name())
            .field("epoch", &self.epoch.load(SeqCst))
            .field("baton", &self.baton.load(SeqCst))
            .field("swaps", &self.swaps.load(SeqCst))
            .finish_non_exhaustive()
    }
}

/// Per-thread handle on an [`AdaptiveLock`].
///
/// Caches a [`DynHandle`] per generation and re-creates it when a swap
/// moves the lock — which is what lets one migration cross dispatch
/// tiers: each tree hands out its own best handle.
pub struct AdaptHandle {
    lock: Arc<AdaptiveLock>,
    cpu: CpuId,
    stripe: usize,
    /// Generation `inner` belongs to (`u64::MAX` before first use).
    generation: u64,
    inner: Option<DynHandle>,
    /// Generation this handle is currently holding (acquire..release).
    held: Option<u64>,
}

impl AdaptHandle {
    /// Blocks until the lock is held.
    ///
    /// # Panics
    ///
    /// Panics if the handle already holds the lock.
    pub fn acquire(&mut self) {
        assert!(self.held.is_none(), "AdaptHandle::acquire while held");
        loop {
            let generation = self.lock.epoch.load(SeqCst);
            self.lock.entrants(generation).register(self.stripe);
            // Dekker re-check: if the epoch moved between the load and
            // the registration becoming visible, we may be registered
            // for a generation the controller is already draining past
            // — back out and retry against the fresh epoch.
            if self.lock.epoch.load(SeqCst) != generation {
                self.lock.entrants(generation).deregister(self.stripe);
                std::hint::spin_loop();
                continue;
            }
            // Admitted: the controller now waits for us. The slot for
            // this parity cannot be replaced while we are registered.
            if self.generation != generation {
                let tree = Arc::clone(
                    &self.lock.slot(generation).read().expect("slot poisoned"),
                );
                self.inner = Some(tree.handle(self.cpu));
                self.generation = generation;
            }
            // Ownership gate: enter the tree only once this generation
            // holds the baton. The baton cannot move past `generation`
            // while we are registered, so this check cannot go stale.
            let mut spins: u64 = 0;
            while self.lock.baton.load(SeqCst) != generation {
                AdaptiveLock::relax(&mut spins, "baton never transferred (acquire)");
            }
            chaos::point("adapt-enter");
            self.inner.as_mut().expect("handle built above").acquire();
            self.held = Some(generation);
            return;
        }
    }

    /// Deadline-bounded [`acquire`](Self::acquire): the register /
    /// Dekker-re-check loop is unchanged (it never blocks — each lap is
    /// a handful of SeqCst operations), and the two real waits — the
    /// baton gate and the tree acquire — spend one shared absolute
    /// budget. On timeout the entrant registration is backed out,
    /// including re-arming the quiescence hand-off if a migration moved
    /// past while we were registered: a timed-out entrant must never
    /// wedge a swap.
    ///
    /// # Panics
    ///
    /// Panics if the handle already holds the lock.
    #[cfg(feature = "deadline")]
    pub fn try_acquire_until(&mut self, deadline: std::time::Instant) -> bool {
        assert!(
            self.held.is_none(),
            "AdaptHandle::try_acquire_until while held"
        );
        loop {
            let generation = self.lock.epoch.load(SeqCst);
            self.lock.entrants(generation).register(self.stripe);
            if self.lock.epoch.load(SeqCst) != generation {
                self.lock.entrants(generation).deregister(self.stripe);
                std::hint::spin_loop();
                continue;
            }
            if self.generation != generation {
                let tree = Arc::clone(
                    &self.lock.slot(generation).read().expect("slot poisoned"),
                );
                self.inner = Some(tree.handle(self.cpu));
                self.generation = generation;
            }
            // Bounded baton wait. Deliberately not `relax`: its testkit
            // stall bound exists to flag unbounded waits, and this wait
            // is bounded by the deadline itself.
            let mut poll = clof_locks::DeadlinePoll::new(deadline, "adapt-baton");
            let mut spins: u64 = 0;
            while self.lock.baton.load(SeqCst) != generation {
                if poll.expired() {
                    // A baton bailout is a composition-layer abandon
                    // (the tree attempt counts its own), and the whole
                    // composed attempt expired without entering a tree,
                    // so the timeout is counted here too.
                    clof_locks::deadline::note_abandon();
                    #[cfg(feature = "obs")]
                    clof_obs::deadline::record_timeout();
                    self.back_out(generation);
                    return false;
                }
                spins += 1;
                if spins % SPINS_PER_YIELD == 0 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            chaos::point("adapt-enter");
            if !self
                .inner
                .as_mut()
                .expect("handle built above")
                .try_acquire_until(deadline)
            {
                self.back_out(generation);
                return false;
            }
            self.held = Some(generation);
            return true;
        }
    }

    /// [`try_acquire_until`](Self::try_acquire_until) with a relative
    /// budget measured from now.
    #[cfg(feature = "deadline")]
    pub fn try_acquire_for(&mut self, budget: std::time::Duration) -> bool {
        self.try_acquire_until(std::time::Instant::now() + budget)
    }

    /// Backs a timed-out entrant out of `generation`: deregister and —
    /// exactly as in [`release`](Self::release) — re-arm the hand-off
    /// if a migration is waiting on our departure. Without the CAS a
    /// timed-out entrant that was the last registered thread of a
    /// drained generation would leave the baton stranded and the
    /// incoming generation wedged.
    #[cfg(feature = "deadline")]
    fn back_out(&mut self, generation: u64) {
        self.lock.entrants(generation).deregister(self.stripe);
        if self.lock.epoch.load(SeqCst) != generation
            && self.lock.entrants(generation).occupancy() == 0
        {
            let _ = self
                .lock
                .baton
                .compare_exchange(generation, generation + 1, SeqCst, SeqCst);
        }
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not hold the lock.
    pub fn release(&mut self) {
        let generation = self.held.take().expect("AdaptHandle::release while not held");
        self.inner.as_mut().expect("held implies handle").release();
        chaos::point("adapt-release");
        self.lock.entrants(generation).deregister(self.stripe);
        if self.lock.epoch.load(SeqCst) != generation {
            // A migration has moved past us.
            #[cfg(feature = "testkit")]
            match self.lock.mutant() {
                MigrationMutant::DoubleArm => {
                    // MUTANT: every old-generation release arms the
                    // hand-off, unguarded — not just the last, not by CAS.
                    self.lock.baton.store(generation + 1, SeqCst);
                    return;
                }
                MigrationMutant::NoHandoff => {
                    // MUTANT: the transfer step is deleted wholesale —
                    // neither the controller nor the last releaser moves
                    // the baton, so the incoming generation wedges.
                    return;
                }
                _ => {}
            }
            // Hand the baton over if we were the last one out. The CAS
            // makes the transfer exactly-once even when the controller
            // observes the same quiescence concurrently.
            if self.lock.entrants(generation).occupancy() == 0 {
                let _ = self
                    .lock
                    .baton
                    .compare_exchange(generation, generation + 1, SeqCst, SeqCst);
            }
        }
    }

    /// The adaptive lock this handle belongs to.
    pub fn lock(&self) -> &Arc<AdaptiveLock> {
        &self.lock
    }
}

impl std::fmt::Debug for AdaptHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptHandle")
            .field("cpu", &self.cpu)
            .field("generation", &self.generation)
            .field("held", &self.held)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::regular(&[("l0", 2), ("l1", 4)], 8).unwrap()
    }

    const TKT3: [LockKind; 3] = [LockKind::Ticket, LockKind::Ticket, LockKind::Ticket];
    const MCT: [LockKind; 3] = [LockKind::Mcs, LockKind::Clh, LockKind::Ticket];
    const HEM3: [LockKind; 3] = [LockKind::Hemlock, LockKind::Hemlock, LockKind::Hemlock];

    #[test]
    fn idle_swap_completes_and_changes_composition() {
        let lock = Arc::new(AdaptiveLock::new(&hierarchy(), &MCT).unwrap());
        assert_eq!(lock.dispatch_tier(), DispatchTier::Monomorphized);
        assert!(lock.swap_to(&HEM3).unwrap());
        assert_eq!(lock.dispatch_tier(), DispatchTier::Generic);
        assert_eq!(lock.composition(), HEM3.to_vec());
        assert_eq!(lock.epoch(), 1);
        let stats = lock.migration_stats();
        assert_eq!(stats.swaps, 1);
        assert!(stats.last_switch_ns > 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn completed_swap_is_recorded_in_the_audit_ring() {
        let ring = clof_obs::audit::global();
        let before = ring.recorded();
        let lock = Arc::new(AdaptiveLock::new(&hierarchy(), &MCT).unwrap());
        assert!(lock.swap_to(&TKT3).unwrap());
        let done = ring
            .entries()
            .into_iter()
            .filter(|r| r.seq >= before)
            .find(|r| r.reason == clof_obs::audit::AuditReason::MigrationDone)
            .expect("swap must leave a MigrationDone audit record");
        assert_eq!((done.active, done.best), (0, 1), "generation indices");
        assert!(done.detail_ns > 0, "switch latency must be recorded");
        // A failed swap leaves a MigrationFailed record.
        let before = ring.recorded();
        assert!(lock.swap_to(&[LockKind::Ticket]).is_err());
        assert!(ring
            .entries()
            .into_iter()
            .filter(|r| r.seq >= before)
            .any(|r| r.reason == clof_obs::audit::AuditReason::MigrationFailed));
    }

    #[test]
    fn swap_to_same_composition_is_a_noop() {
        let lock = Arc::new(AdaptiveLock::new(&hierarchy(), &MCT).unwrap());
        assert!(!lock.swap_to(&MCT).unwrap());
        assert_eq!(lock.epoch(), 0);
        assert_eq!(lock.migration_stats().swaps, 0);
    }

    #[test]
    fn swap_to_bad_composition_leaves_lock_live() {
        let lock = Arc::new(AdaptiveLock::new(&hierarchy(), &MCT).unwrap());
        assert!(lock.swap_to(&[LockKind::Ticket]).is_err());
        assert_eq!(lock.epoch(), 0);
        let mut h = lock.handle(0);
        h.acquire();
        h.release();
    }

    #[test]
    fn counting_survives_concurrent_swaps() {
        let lock = Arc::new(AdaptiveLock::new(&hierarchy(), &MCT).unwrap());
        let counter = Arc::new(std::sync::Mutex::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let threads = 4;
        let iters = 2_000u64;
        let mut workers = Vec::new();
        for t in 0..threads {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            workers.push(std::thread::spawn(move || {
                let mut h = lock.handle(t * 2);
                for _ in 0..iters {
                    h.acquire();
                    *counter.lock().unwrap() += 1;
                    h.release();
                }
            }));
        }
        let swapper = {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let shapes: [&[LockKind]; 3] = [&TKT3, &HEM3, &MCT];
                let mut i = 0usize;
                let mut swaps = 0u64;
                while !stop.load(SeqCst) {
                    i = (i + 1) % shapes.len();
                    if lock.swap_to(shapes[i]).unwrap() {
                        swaps += 1;
                    }
                    std::thread::yield_now();
                }
                swaps
            })
        };
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, SeqCst);
        let swaps = swapper.join().unwrap();
        assert_eq!(*counter.lock().unwrap(), threads as u64 * iters);
        assert!(swaps > 0, "swapper must have migrated at least once");
        assert_eq!(lock.migration_stats().swaps, swaps);
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn deadline_timeout_leaves_adaptive_lock_usable() {
        use std::time::{Duration, Instant};
        let lock = Arc::new(AdaptiveLock::new(&hierarchy(), &MCT).unwrap());
        let mut holder = lock.handle(0);
        holder.acquire();
        let mut waiter = lock.handle(2);
        let start = Instant::now();
        assert!(!waiter.try_acquire_until(start + Duration::from_millis(40)));
        assert!(start.elapsed() < Duration::from_secs(5));
        holder.release();
        // The timed-out entrant deregistered: a swap can still drain.
        assert!(lock.swap_to(&TKT3).unwrap());
        assert!(waiter.try_acquire_until(Instant::now() + Duration::from_secs(10)));
        waiter.release();
        assert_eq!(lock.epoch(), 1);
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn timed_out_entrant_does_not_wedge_migration() {
        use std::time::{Duration, Instant};
        // Interleave timed-out acquisitions (some against a held lock)
        // with migrations: every bailout must back its registration out
        // and re-arm the hand-off when it leaves last, or `swap_to`'s
        // drain would stall (the testkit stall bound would fire).
        let lock = Arc::new(AdaptiveLock::new(&hierarchy(), &MCT).unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut workers = Vec::new();
        for t in 0..3usize {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                let mut h = lock.handle(t * 2);
                while !stop.load(SeqCst) {
                    // Short budgets force frequent baton/tree timeouts
                    // under contention from the sibling workers.
                    if h.try_acquire_until(Instant::now() + Duration::from_micros(200)) {
                        std::hint::spin_loop();
                        h.release();
                    }
                }
            }));
        }
        let shapes: [&[LockKind]; 3] = [&TKT3, &HEM3, &MCT];
        let mut swaps = 0u64;
        for i in 0..30 {
            if lock.swap_to(shapes[i % shapes.len()]).unwrap() {
                swaps += 1;
            }
        }
        stop.store(true, SeqCst);
        for w in workers {
            w.join().unwrap();
        }
        assert!(swaps > 0);
        assert_eq!(lock.migration_stats().swaps, swaps);
        // Quiesced: a plain acquire still works on the final tree.
        let mut h = lock.handle(0);
        h.acquire();
        h.release();
    }

    #[test]
    fn handle_follows_generations_across_tiers() {
        let lock = Arc::new(AdaptiveLock::new(&hierarchy(), &MCT).unwrap());
        let mut h = lock.handle(3);
        h.acquire();
        h.release();
        lock.swap_to(&HEM3).unwrap();
        h.acquire();
        h.release();
        lock.swap_to(&TKT3).unwrap();
        h.acquire();
        h.release();
        assert_eq!(lock.epoch(), 2);
    }
}
