//! Runtime-assembled CLoF locks: any `&[LockKind]` composition over any
//! [`Hierarchy`].
//!
//! This is the form the exhaustive generator (paper §4.3) benchmarks: with
//! `N = 4` basic locks and `M = 4` levels there are 256 compositions, far
//! too many to monomorphize statically. A [`DynClofLock`] is a tree of
//! [`DynNode`]s — one per cohort per level — each holding an enum-
//! dispatched basic lock, the level metadata, and an `Arc` to its parent
//! node. The protocol is identical to the static [`Clof`](crate::Clof).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clof_topology::{CpuId, Hierarchy};

use crate::error::ClofError;
use crate::kind::{AnyContext, AnyLock, LockKind};
use crate::level::{ClofParams, LevelMeta};

use self::nodeobs::{HoldObs, LockObs, NodeObs};

/// Telemetry plumbing for the dynamic composition, in the style of the
/// `clof-locks` chaos module: the enabled and disabled variants expose
/// the same names, and with the `obs` feature off every type is
/// zero-sized and every method an empty `#[inline]` body the optimizer
/// erases — call sites stay free of `cfg` noise.
#[cfg(feature = "obs")]
mod nodeobs {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use clof_obs::trace::{self, SpanKind};
    use clof_obs::{now_ns, thread_tag, watchdog, EventRing, LevelCounters, LogHistogram, PassKind};

    /// Per-lock collector state shared by every node of one
    /// [`DynClofLock`](super::DynClofLock).
    #[derive(Debug, Default)]
    pub(super) struct LockObs {
        pub(super) ring: Arc<EventRing>,
        pub(super) hold_ns: Arc<LogHistogram>,
    }

    impl LockObs {
        pub(super) fn new() -> Self {
            Self::default()
        }
    }

    /// Per-node recording state: the node's level, its counters and
    /// acquire-latency histogram, and a handle on the lock-wide ring.
    #[derive(Debug)]
    pub(super) struct NodeObs {
        level: u8,
        /// Process-unique cohort tag for the tracer (sibling cohorts
        /// share a level; spans must not interleave across them).
        node: u32,
        /// Hand-off flow id parked by a pass for its inheritor. Written
        /// under the low lock just before the release that publishes the
        /// pass flag; read (and cleared) by the inheriting acquire — the
        /// causality edge rides the same release→acquire synchronization
        /// as the pass flag itself.
        flow: AtomicU64,
        pub(super) counters: LevelCounters,
        pub(super) acquire_ns: LogHistogram,
        ring: Arc<EventRing>,
    }

    impl NodeObs {
        pub(super) fn new(level: usize, lock: &LockObs) -> Self {
            NodeObs {
                level: level as u8,
                node: trace::node_tag(),
                flow: AtomicU64::new(0),
                counters: LevelCounters::new(),
                acquire_ns: LogHistogram::new(),
                ring: Arc::clone(&lock.ring),
            }
        }

        /// Timestamp taken before the low-lock acquire.
        #[inline]
        pub(super) fn start(&self) -> u64 {
            now_ns()
        }

        #[inline]
        pub(super) fn record_acquire(&self, inherited: bool, start: u64) {
            let end = now_ns();
            self.counters.record_acquire(inherited);
            self.acquire_ns.record(end.saturating_sub(start));
            if trace::is_enabled() {
                let flow_in = if inherited {
                    self.flow.swap(0, Ordering::Relaxed)
                } else {
                    0
                };
                trace::record(
                    start,
                    end,
                    self.level,
                    self.node,
                    SpanKind::Wait { inherited },
                    flow_in,
                    0,
                );
            }
        }

        #[inline]
        pub(super) fn record_pass(&self) {
            self.counters.record_pass_taken();
            self.ring.record(self.level, PassKind::Pass, thread_tag());
            if trace::is_enabled() {
                let at = now_ns();
                let flow = trace::next_flow_id();
                self.flow.store(flow, Ordering::Relaxed);
                trace::record(at, at, self.level, self.node, SpanKind::Pass, 0, flow);
            }
        }

        #[inline]
        pub(super) fn record_release_up(&self, threshold_hit: bool) {
            self.counters.record_pass_declined(threshold_hit);
            self.ring
                .record(self.level, PassKind::ReleaseUp, thread_tag());
            if trace::is_enabled() {
                let at = now_ns();
                trace::record(
                    at,
                    at,
                    self.level,
                    self.node,
                    SpanKind::ReleaseUp {
                        forced: threshold_hit,
                    },
                    0,
                    0,
                );
            }
        }

        #[inline]
        pub(super) fn record_hint_hit(&self) {
            self.counters.record_hint_hit();
        }
    }

    /// Critical-section hold-time tracker carried by each handle; also
    /// publishes the thread's progress phase for the starvation
    /// watchdog.
    #[derive(Debug)]
    pub(super) struct HoldObs {
        hist: Arc<LogHistogram>,
        acquired_at: u64,
    }

    impl HoldObs {
        pub(super) fn new(lock: &LockObs) -> Self {
            HoldObs {
                hist: Arc::clone(&lock.hold_ns),
                acquired_at: 0,
            }
        }

        /// Entering the composed acquire (before any spinning).
        #[inline]
        pub(super) fn waiting(&mut self) {
            watchdog::note_wait(thread_tag());
        }

        #[inline]
        pub(super) fn acquired(&mut self) {
            self.acquired_at = now_ns();
            watchdog::note_hold(thread_tag());
        }

        #[inline]
        pub(super) fn released(&mut self) {
            let end = now_ns();
            self.hist.record(end.saturating_sub(self.acquired_at));
            if trace::is_enabled() {
                trace::record(self.acquired_at, end, 0, 0, SpanKind::Hold, 0, 0);
            }
            watchdog::note_idle(thread_tag());
        }
    }
}

#[cfg(not(feature = "obs"))]
mod nodeobs {
    #[derive(Debug, Default)]
    pub(super) struct LockObs;

    impl LockObs {
        pub(super) fn new() -> Self {
            LockObs
        }
    }

    #[derive(Debug)]
    pub(super) struct NodeObs;

    impl NodeObs {
        #[inline]
        pub(super) fn new(_level: usize, _lock: &LockObs) -> Self {
            NodeObs
        }

        #[inline(always)]
        pub(super) fn start(&self) -> u64 {
            0
        }

        #[inline(always)]
        pub(super) fn record_acquire(&self, _inherited: bool, _start: u64) {}

        #[inline(always)]
        pub(super) fn record_pass(&self) {}

        #[inline(always)]
        pub(super) fn record_release_up(&self, _threshold_hit: bool) {}

        #[inline(always)]
        pub(super) fn record_hint_hit(&self) {}
    }

    #[derive(Debug)]
    pub(super) struct HoldObs;

    impl HoldObs {
        #[inline]
        pub(super) fn new(_lock: &LockObs) -> Self {
            HoldObs
        }

        #[inline(always)]
        pub(super) fn waiting(&mut self) {}

        #[inline(always)]
        pub(super) fn acquired(&mut self) {}

        #[inline(always)]
        pub(super) fn released(&mut self) {}
    }
}

/// Hand-off statistics of one cohort node (relaxed counters — exact
/// totals at quiescence, approximate snapshots while running).
#[derive(Debug, Default)]
struct NodeStats {
    /// Times the node's low lock was acquired through this node.
    acquisitions: AtomicU64,
    /// Releases that *passed* the high lock within the cohort.
    passes: AtomicU64,
    /// Releases that let the high lock go to other cohorts.
    releases_up: AtomicU64,
}

/// Per-level aggregate of [`DynClofLock::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelStats {
    /// Level index, 0 = innermost.
    pub level: usize,
    /// Low-lock acquisitions at this level.
    pub acquisitions: u64,
    /// Intra-cohort passes decided at this level.
    pub passes: u64,
    /// Full releases (high lock surrendered) decided at this level.
    pub releases_up: u64,
}

impl LevelStats {
    /// Fraction of release decisions at this level that stayed local —
    /// the locality the composition achieved (cf. the simulator's
    /// `handovers_by_level`).
    pub fn locality(&self) -> f64 {
        let total = self.passes + self.releases_up;
        if total == 0 {
            0.0
        } else {
            self.passes as f64 / total as f64
        }
    }
}

/// One cohort node in a dynamic CLoF tree.
pub struct DynNode {
    low: AnyLock,
    /// Metadata + the high-lock context; `None` context for the root.
    meta: LevelMeta<()>,
    high_ctx: UnsafeCell<Option<AnyContext>>,
    high: Option<Arc<DynNode>>,
    /// Whether acquires must maintain the read-indicator counter. False
    /// when the low lock natively answers `has_waiters` (the paper's
    /// §4.1.2 custom hint, [`LockInfo::waiter_hint`]): the release path
    /// will never consult the counter then, so maintaining it is pure
    /// coherence traffic on the acquire fast path.
    ///
    /// [`LockInfo::waiter_hint`]: clof_locks::LockInfo
    counter_waiters: bool,
    stats: NodeStats,
    obs: NodeObs,
}

// SAFETY: `high_ctx` is protected by the low lock exactly like the static
// composition's `LevelMeta` context cell (context invariant + release
// order); all other state is atomics or immutable after construction.
unsafe impl Sync for DynNode {}
// SAFETY: All owned data is `Send`.
unsafe impl Send for DynNode {}

impl DynNode {
    fn root(kind: LockKind, params: ClofParams, level: usize, obs: &LockObs) -> Self {
        DynNode {
            low: AnyLock::new(kind),
            meta: LevelMeta::new(params),
            high_ctx: UnsafeCell::new(None),
            high: None,
            counter_waiters: !kind.info().waiter_hint,
            stats: NodeStats::default(),
            obs: NodeObs::new(level, obs),
        }
    }

    fn child(kind: LockKind, high: Arc<DynNode>, params: ClofParams, level: usize, obs: &LockObs) -> Self {
        let high_ctx = high.low.new_context();
        DynNode {
            low: AnyLock::new(kind),
            meta: LevelMeta::new(params),
            high_ctx: UnsafeCell::new(Some(high_ctx)),
            high: Some(high),
            counter_waiters: !kind.info().waiter_hint,
            stats: NodeStats::default(),
            obs: NodeObs::new(level, obs),
        }
    }

    /// Recursive `lockgen` acquire (paper Figure 8).
    fn acquire(&self, ctx: &mut AnyContext) {
        let Some(high) = &self.high else {
            // Base case: the system-level basic lock.
            let start = self.obs.start();
            self.low.acquire(ctx);
            self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
            self.obs.record_acquire(false, start);
            return;
        };
        let start = self.obs.start();
        // The read-indicator bracket is skipped entirely when the low
        // lock natively reports waiters (paper §4.1.2) — the release
        // path takes the hint branch unconditionally then.
        if self.counter_waiters {
            self.meta.inc_waiters();
        }
        self.low.acquire(ctx);
        if self.counter_waiters {
            self.meta.dec_waiters();
        }
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        // Window between winning the low lock and inspecting the pass
        // flag left by the previous owner.
        clof_locks::chaos::point("dyn-acquire-low-won");
        self.obs.record_acquire(self.meta.has_high_lock(), start);
        if !self.meta.has_high_lock() {
            self.meta.debug_ctx_enter();
            // SAFETY: We own the low lock; the context invariant grants
            // exclusive use of the high context, and the previous user's
            // writes are visible through the low lock's release→acquire
            // synchronization.
            let slot = unsafe { &mut *self.high_ctx.get() };
            let high_ctx = slot.as_mut().expect("non-root nodes have a high context");
            high.acquire(high_ctx);
            self.meta.debug_ctx_exit();
        }
    }

    /// Recursive `lockgen` release (paper Figure 8).
    fn release(&self, ctx: &mut AnyContext) {
        let Some(high) = &self.high else {
            self.low.release(ctx);
            return;
        };
        let hint = self.low.has_waiters_hint(ctx);
        if hint.is_some() {
            self.obs.record_hint_hit();
        }
        let waiters = hint.unwrap_or_else(|| self.meta.has_waiters());
        if waiters && self.meta.keep_local() {
            self.stats.passes.fetch_add(1, Ordering::Relaxed);
            self.obs.record_pass();
            self.meta.pass_high_lock();
            // Window between setting the pass flag and releasing the low
            // lock that publishes it to the successor.
            clof_locks::chaos::point("dyn-release-pass");
            self.low.release(ctx);
        } else {
            self.stats.releases_up.fetch_add(1, Ordering::Relaxed);
            // `waiters` still true here means keep_local hit its
            // threshold — a forced surrender, not an idle cohort.
            self.obs.record_release_up(waiters);
            self.meta.clear_high_lock();
            clof_locks::chaos::point("dyn-release-up");
            self.meta.debug_ctx_enter();
            // SAFETY: As in `acquire`; we still own the low lock. Release
            // order high → low is required by the context invariant
            // (paper §4.1.3): releasing low first would let a successor
            // race us on this context.
            let slot = unsafe { &mut *self.high_ctx.get() };
            let high_ctx = slot.as_mut().expect("non-root nodes have a high context");
            high.release(high_ctx);
            self.meta.debug_ctx_exit();
            self.low.release(ctx);
        }
    }

    /// This node's basic-lock kind.
    pub fn kind(&self) -> LockKind {
        self.low.kind()
    }
}

/// A complete CLoF lock for a machine: the tree of per-cohort nodes plus
/// the CPU → leaf mapping.
///
/// See the [crate docs](crate) for a usage example.
pub struct DynClofLock {
    leaves: Vec<Arc<DynNode>>,
    cpu_to_leaf: Vec<usize>,
    composition: Vec<LockKind>,
    name: String,
    obs: LockObs,
}

impl std::fmt::Debug for DynClofLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynClofLock")
            .field("composition", &self.name)
            .field("leaves", &self.leaves.len())
            .finish()
    }
}

impl DynClofLock {
    /// Builds the composition `locks` (innermost level first, one entry
    /// per hierarchy level) over `hierarchy`, with default parameters.
    ///
    /// # Errors
    ///
    /// Fails if the composition length does not match the hierarchy's
    /// level count, or if a component is unfair (use
    /// [`build_with`](Self::build_with) with `allow_unfair` to override —
    /// the paper only considers fair locks after §4.2.3).
    pub fn build(hierarchy: &Hierarchy, locks: &[LockKind]) -> Result<Self, ClofError> {
        Self::build_with(hierarchy, locks, ClofParams::default(), false)
    }

    /// Builds with explicit parameters and fairness policy.
    pub fn build_with(
        hierarchy: &Hierarchy,
        locks: &[LockKind],
        params: ClofParams,
        allow_unfair: bool,
    ) -> Result<Self, ClofError> {
        let per_level = vec![params; hierarchy.level_count()];
        Self::build_with_level_params(hierarchy, locks, &per_level, allow_unfair)
    }

    /// Builds with *per-level* parameters (innermost first) — HMCS tunes
    /// its keep-local threshold per level, and so can CLoF compositions.
    pub fn build_with_level_params(
        hierarchy: &Hierarchy,
        locks: &[LockKind],
        params: &[ClofParams],
        allow_unfair: bool,
    ) -> Result<Self, ClofError> {
        if locks.len() != hierarchy.level_count() || params.len() != hierarchy.level_count() {
            return Err(ClofError::LevelCountMismatch {
                locks: locks.len().min(params.len()),
                levels: hierarchy.level_count(),
            });
        }
        if !allow_unfair {
            if let Some((level, &kind)) = locks.iter().enumerate().find(|&(_, k)| !k.is_fair()) {
                return Err(ClofError::UnfairComponent { kind, level });
            }
        }
        let levels = hierarchy.level_count();
        let obs = LockObs::new();
        // Build from the root (outermost level) down.
        let root_kind = locks[levels - 1];
        let mut upper: Vec<Arc<DynNode>> =
            vec![Arc::new(DynNode::root(root_kind, params[levels - 1], levels - 1, &obs))];
        for level in (0..levels - 1).rev() {
            let mut nodes = Vec::with_capacity(hierarchy.cohort_count(level));
            for cohort in 0..hierarchy.cohort_count(level) {
                let cpu = hierarchy.cohort_members(level, cohort)[0];
                let parent_cohort = hierarchy.cohort(level + 1, cpu);
                nodes.push(Arc::new(DynNode::child(
                    locks[level],
                    Arc::clone(&upper[parent_cohort]),
                    params[level],
                    level,
                    &obs,
                )));
            }
            upper = nodes;
        }
        let cpu_to_leaf = (0..hierarchy.ncpus())
            .map(|c| hierarchy.cohort(0, c))
            .collect();
        Ok(DynClofLock {
            leaves: upper,
            cpu_to_leaf,
            composition: locks.to_vec(),
            name: crate::generator::composition_name(locks),
            obs,
        })
    }

    /// A per-thread handle entering at `cpu`'s leaf cohort.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the hierarchy used to build the lock.
    pub fn handle(&self, cpu: CpuId) -> DynHandle {
        let leaf = Arc::clone(&self.leaves[self.cpu_to_leaf[cpu]]);
        let ctx = leaf.low.new_context();
        DynHandle {
            leaf,
            ctx,
            hold: HoldObs::new(&self.obs),
        }
    }

    /// Composition in the paper's notation, e.g. `"tkt-clh-tkt"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The composed kinds, innermost first.
    pub fn composition(&self) -> &[LockKind] {
        &self.composition
    }

    /// Whether this composition is starvation-free.
    pub fn is_fair(&self) -> bool {
        self.composition.iter().all(|k| k.is_fair())
    }

    /// Number of leaf cohorts.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Aggregated hand-off statistics per level (innermost first).
    ///
    /// A well-matched composition shows high [`LevelStats::locality`] at
    /// the inner levels — the real-lock counterpart of the simulator's
    /// per-level handover histogram.
    pub fn stats(&self) -> Vec<LevelStats> {
        let levels = self.composition.len();
        let mut out: Vec<LevelStats> = (0..levels)
            .map(|level| LevelStats {
                level,
                acquisitions: 0,
                passes: 0,
                releases_up: 0,
            })
            .collect();
        // Walk each distinct node once, leaf chains upward.
        let mut seen: Vec<*const DynNode> = Vec::new();
        for leaf in &self.leaves {
            let mut level = 0usize;
            let mut cur: &Arc<DynNode> = leaf;
            loop {
                let ptr = Arc::as_ptr(cur);
                if !seen.contains(&(ptr as *const DynNode)) {
                    seen.push(ptr);
                    out[level].acquisitions +=
                        cur.stats.acquisitions.load(Ordering::Relaxed);
                    out[level].passes += cur.stats.passes.load(Ordering::Relaxed);
                    out[level].releases_up +=
                        cur.stats.releases_up.load(Ordering::Relaxed);
                }
                match &cur.high {
                    Some(high) => {
                        cur = high;
                        level += 1;
                    }
                    None => break,
                }
            }
        }
        out
    }

    /// Full telemetry snapshot: per-level counters and acquire-latency
    /// histograms (summed across cohorts), whole-lock hold-time
    /// histogram, and the surviving pass-event trace — everything
    /// [`clof_obs::render_json`]/[`clof_obs::render_prometheus`] and the
    /// `Display` impl consume. Exact at quiescence, approximate while
    /// threads are mid-acquire (same contract as [`Self::stats`]).
    #[cfg(feature = "obs")]
    pub fn obs_snapshot(&self) -> clof_obs::LockSnapshot {
        let mut levels: Vec<clof_obs::LevelSnapshot> = (0..self.composition.len())
            .map(|level| clof_obs::LevelSnapshot {
                level,
                ..Default::default()
            })
            .collect();
        let mut seen: Vec<*const DynNode> = Vec::new();
        for leaf in &self.leaves {
            let mut level = 0usize;
            let mut cur: &Arc<DynNode> = leaf;
            loop {
                let ptr = Arc::as_ptr(cur);
                if !seen.contains(&ptr) {
                    seen.push(ptr);
                    let mut snap = cur.obs.counters.snapshot(level);
                    snap.acquire_ns = cur.obs.acquire_ns.snapshot();
                    levels[level].merge(&snap);
                }
                match &cur.high {
                    Some(high) => {
                        cur = high;
                        level += 1;
                    }
                    None => break,
                }
            }
        }
        clof_obs::LockSnapshot {
            name: self.name.clone(),
            levels,
            hold_ns: self.obs.hold_ns.snapshot(),
            events_recorded: self.obs.ring.recorded(),
            events_dropped: self.obs.ring.dropped(),
            events: self.obs.ring.events(),
        }
    }

    /// Per-level waiter counts right now: `(level, queued_waiters)`
    /// summed over cohorts, innermost first. Approximate by nature (it
    /// races running acquires) — meant as the queue-shape hint in a
    /// starvation watchdog's diagnostic dump. Levels whose low lock
    /// natively hints waiters keep no read-indicator counter and always
    /// report 0 here.
    #[cfg(feature = "obs")]
    pub fn queue_hints(&self) -> Vec<(usize, u32)> {
        let mut out: Vec<(usize, u32)> =
            (0..self.composition.len()).map(|l| (l, 0)).collect();
        let mut seen: Vec<*const DynNode> = Vec::new();
        for leaf in &self.leaves {
            let mut level = 0usize;
            let mut cur: &Arc<DynNode> = leaf;
            loop {
                let ptr = Arc::as_ptr(cur);
                if !seen.contains(&ptr) {
                    seen.push(ptr);
                    out[level].1 += cur.meta.waiter_count();
                }
                match &cur.high {
                    Some(high) => {
                        cur = high;
                        level += 1;
                    }
                    None => break,
                }
            }
        }
        out
    }
}

/// A per-thread handle: the leaf node plus this thread's leaf context.
pub struct DynHandle {
    leaf: Arc<DynNode>,
    ctx: AnyContext,
    hold: HoldObs,
}

impl DynHandle {
    /// Acquires the composed lock.
    pub fn acquire(&mut self) {
        self.hold.waiting();
        self.leaf.acquire(&mut self.ctx);
        self.hold.acquired();
    }

    /// Releases the composed lock.
    ///
    /// Must only be called while held through this handle.
    pub fn release(&mut self) {
        self.hold.released();
        self.leaf.release(&mut self.ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn hammer(lock: &Arc<DynClofLock>, cpus: &[usize], iters: usize) -> usize {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for &cpu in cpus {
            let lock = Arc::clone(lock);
            let counter = Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                for _ in 0..iters {
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn build_checks_level_count() {
        let h = platforms::tiny();
        let err = DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Ticket]).unwrap_err();
        assert!(matches!(err, ClofError::LevelCountMismatch { .. }));
    }

    #[test]
    fn build_rejects_unfair_by_default() {
        let h = platforms::tiny();
        let err =
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Ttas, LockKind::Ticket]).unwrap_err();
        assert!(matches!(
            err,
            ClofError::UnfairComponent {
                kind: LockKind::Ttas,
                level: 1
            }
        ));
        // ... but allows it when asked (the lock-cohorting C-BO-MCS case).
        let lock = DynClofLock::build_with(
            &h,
            &[LockKind::Mcs, LockKind::Ttas, LockKind::Ticket],
            ClofParams::default(),
            true,
        )
        .unwrap();
        assert!(!lock.is_fair());
    }

    #[test]
    fn name_follows_paper_notation() {
        let h = platforms::tiny();
        let lock =
            DynClofLock::build(&h, &[LockKind::Hemlock, LockKind::Mcs, LockKind::Clh]).unwrap();
        assert_eq!(lock.name(), "hem-mcs-clh");
        assert_eq!(lock.leaf_count(), 4);
    }

    #[test]
    fn mutual_exclusion_all_cpus_tiny() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
        );
        let cpus: Vec<usize> = (0..8).collect();
        assert_eq!(hammer(&lock, &cpus, 1000), 8000);
    }

    #[test]
    fn mutual_exclusion_every_homogeneous_composition() {
        let h = platforms::tiny();
        for kind in [
            LockKind::Ticket,
            LockKind::Mcs,
            LockKind::Clh,
            LockKind::Hemlock,
            LockKind::HemlockCtr,
        ] {
            let lock = Arc::new(DynClofLock::build(&h, &[kind, kind, kind]).unwrap());
            let cpus = [0usize, 3, 4, 7];
            assert_eq!(hammer(&lock, &cpus, 500), 2000, "{kind:?}");
        }
    }

    #[test]
    fn mutual_exclusion_4level_on_paper_armv8() {
        // Full Armv8 hierarchy; threads on a spread of CPUs.
        let h = platforms::paper_armv8_4level();
        let lock = Arc::new(
            DynClofLock::build(
                &h,
                &[
                    LockKind::Ticket,
                    LockKind::Clh,
                    LockKind::Ticket,
                    LockKind::Ticket,
                ],
            )
            .unwrap(),
        );
        assert_eq!(lock.name(), "tkt-clh-tkt-tkt");
        let cpus = [0usize, 1, 4, 33, 64, 127];
        assert_eq!(hammer(&lock, &cpus, 400), 2400);
    }

    #[test]
    fn two_threads_same_cpu_share_leaf() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Mcs, LockKind::Mcs]).unwrap(),
        );
        assert_eq!(hammer(&lock, &[2, 2], 1000), 2000);
    }

    #[test]
    fn keep_local_threshold_one_still_live() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build_with(
                &h,
                &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
                ClofParams {
                    keep_local_threshold: 1,
                },
                false,
            )
            .unwrap(),
        );
        assert_eq!(hammer(&lock, &[0, 1, 6, 7], 500), 2000);
    }

    #[test]
    fn stats_capture_locality() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
        );
        // Force a same-cohort waiter to exist at release time (on a
        // single-CPU host free-running threads rarely overlap): hold the
        // lock from CPU 0 while CPU 1 (same leaf cohort) queues up.
        let mut holder = lock.handle(0);
        holder.acquire();
        let started = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let waiter = {
            let lock = Arc::clone(&lock);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut handle = lock.handle(1);
                started.store(1, std::sync::atomic::Ordering::Release);
                handle.acquire();
                handle.release();
            })
        };
        while started.load(std::sync::atomic::Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        holder.release(); // waiter is queued at the leaf ⇒ local pass
        waiter.join().unwrap();

        let stats = lock.stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].acquisitions, 2);
        assert_eq!(stats[0].passes, 1, "{stats:?}");
        // The root was acquired once (by the holder) and inherited by
        // the waiter.
        assert_eq!(stats[2].acquisitions, 1);
        assert!(stats[0].locality() > 0.0);
    }

    #[test]
    fn stats_zero_on_fresh_lock() {
        let h = platforms::tiny();
        let lock =
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Mcs, LockKind::Mcs]).unwrap();
        for level in lock.stats() {
            assert_eq!(level.acquisitions, 0);
            assert_eq!(level.locality(), 0.0);
        }
    }

    #[test]
    fn per_level_params_apply() {
        use crate::level::ClofParams;
        let h = platforms::tiny();
        let params = [
            ClofParams { keep_local_threshold: 2 },
            ClofParams { keep_local_threshold: 64 },
            ClofParams { keep_local_threshold: 1 },
        ];
        let lock = Arc::new(
            DynClofLock::build_with_level_params(
                &h,
                &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
                &params,
                false,
            )
            .unwrap(),
        );
        assert_eq!(hammer(&lock, &[0, 1, 4, 5], 500), 2000);
        // Arity mismatch is rejected.
        let err = DynClofLock::build_with_level_params(
            &h,
            &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
            &params[..2],
            false,
        );
        assert!(err.is_err());
    }

    /// Queues a waiter on CPU 1 while CPU 0 holds, and reports the leaf
    /// cohort's read-indicator count observed during the wait.
    fn waiter_count_while_queued(lock: &Arc<DynClofLock>) -> u32 {
        let mut holder = lock.handle(0);
        holder.acquire();
        let started = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let lock = Arc::clone(lock);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut handle = lock.handle(1);
                started.store(1, Ordering::Release);
                handle.acquire();
                handle.release();
            })
        };
        while started.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        // Grace period: the waiter is parked in the leaf's low-lock
        // acquire (CPUs 0 and 1 share the leaf cohort on `tiny`).
        std::thread::sleep(std::time::Duration::from_millis(50));
        let count = lock.leaves[lock.cpu_to_leaf[0]].meta.waiter_count();
        holder.release();
        waiter.join().unwrap();
        count
    }

    #[test]
    fn hinting_low_lock_skips_read_indicator() {
        // Regression: a low lock with a native waiter hint (tkt) must
        // not maintain the read-indicator counter at all — the release
        // path always takes the hint branch, so `inc`/`dec_waiters`
        // would be pure wasted coherence traffic.
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket])
                .unwrap(),
        );
        assert_eq!(waiter_count_while_queued(&lock), 0);
    }

    #[test]
    fn hintless_low_lock_maintains_read_indicator() {
        // Counterpart: TTAS answers no hint, so the counter path must
        // still run and see the queued waiter.
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build_with(
                &h,
                &[LockKind::Ttas, LockKind::Ticket, LockKind::Ticket],
                ClofParams::default(),
                true,
            )
            .unwrap(),
        );
        assert_eq!(waiter_count_while_queued(&lock), 1);
    }

    #[test]
    fn flat_hierarchy_is_just_the_basic_lock() {
        let h = clof_topology::Hierarchy::flat(4).unwrap();
        let lock = Arc::new(DynClofLock::build(&h, &[LockKind::Clh]).unwrap());
        assert_eq!(lock.name(), "clh");
        assert_eq!(hammer(&lock, &[0, 1, 2, 3], 1000), 4000);
    }
}
