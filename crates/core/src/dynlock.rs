//! Runtime-assembled CLoF locks: any `&[LockKind]` composition over any
//! [`Hierarchy`].
//!
//! This is the form the exhaustive generator (paper §4.3) benchmarks: with
//! `N = 4` basic locks and `M = 4` levels there are 256 compositions, far
//! too many to monomorphize statically. A [`DynClofLock`] is a tree of
//! [`DynNode`]s — one per cohort per level — each holding an enum-
//! dispatched basic lock, the level metadata, and an `Arc` to its parent
//! node. The protocol is identical to the static [`Clof`](crate::Clof).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clof_topology::{CpuId, Hierarchy};

use crate::compose::{cohort_layout, cpu_stripes};
use crate::error::ClofError;
use crate::kind::{AnyContext, AnyLock, LockKind};
use crate::level::{ClofParams, LevelMeta};

use self::fastdisp::FastTier;
use self::nodeobs::{HoldObs, LockObs, NodeObs};

/// Telemetry plumbing for the dynamic composition, in the style of the
/// `clof-locks` chaos module: the enabled and disabled variants expose
/// the same names, and with the `obs` feature off every type is
/// zero-sized and every method an empty `#[inline]` body the optimizer
/// erases — call sites stay free of `cfg` noise.
#[cfg(feature = "obs")]
mod nodeobs {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use clof_obs::profile::{self, NodeAcc};
    use clof_obs::registry::{self, SiteAnchor};
    use clof_obs::trace::{self, SpanKind};
    use clof_obs::{
        now_ns, thread_tag, waitgraph, watchdog, EventRing, LevelCounters, LogHistogram, PassKind,
    };

    /// Per-lock collector state shared by every node of one
    /// [`DynClofLock`](super::DynClofLock): the pass-event ring, the
    /// hold-time histogram, and the lock's contention-profiler site
    /// anchor (shared so handles can attribute wait/hold to the site
    /// even while an adaptation rebind retargets it).
    #[derive(Debug)]
    pub(super) struct LockObs {
        pub(super) ring: Arc<EventRing>,
        pub(super) hold_ns: Arc<LogHistogram>,
        pub(super) site: Arc<SiteAnchor>,
    }

    impl LockObs {
        pub(super) fn new(
            label: &str,
            shape: &str,
            caller: &'static std::panic::Location<'static>,
        ) -> Self {
            // First telemetry-enabled lock in the process wires the
            // spin-then-park recorder hooks into clof-obs.
            #[cfg(feature = "park")]
            crate::parkglue::install();
            // Likewise for the deadline layer's abandon/skip counters.
            #[cfg(feature = "deadline")]
            crate::deadlineglue::install();
            LockObs {
                ring: Arc::default(),
                hold_ns: Arc::default(),
                site: Arc::new(registry::global().register_at(label, shape, caller)),
            }
        }
    }

    /// Per-node recording state: the node's level, its counters and
    /// acquire-latency histogram, and a handle on the lock-wide ring.
    #[derive(Debug)]
    pub(super) struct NodeObs {
        level: u8,
        /// Process-unique cohort tag for the tracer (sibling cohorts
        /// share a level; spans must not interleave across them).
        node: u32,
        /// Hand-off flow id parked by a pass for its inheritor. Written
        /// under the low lock just before the release that publishes the
        /// pass flag; read (and cleared) by the inheriting acquire — the
        /// causality edge rides the same release→acquire synchronization
        /// as the pass flag itself.
        flow: AtomicU64,
        pub(super) counters: LevelCounters,
        pub(super) acquire_ns: LogHistogram,
        ring: Arc<EventRing>,
        /// The lock's profiler site (shared; rebind retargets the id).
        site: Arc<SiteAnchor>,
        /// This node's per-(level, node) wait accumulator in the
        /// contention profile.
        acc: Arc<NodeAcc>,
    }

    impl NodeObs {
        pub(super) fn new(level: usize, lock: &LockObs) -> Self {
            let node = trace::node_tag();
            NodeObs {
                level: level as u8,
                node,
                flow: AtomicU64::new(0),
                counters: LevelCounters::new(),
                acquire_ns: LogHistogram::new(),
                ring: Arc::clone(&lock.ring),
                acc: profile::global().register_node(lock.site.id(), level as u8, node),
                site: Arc::clone(&lock.site),
            }
        }

        /// The node's profile accumulator (for re-attachment after an
        /// adaptation rebind moves the lock onto an adopted site id).
        pub(super) fn acc(&self) -> &Arc<NodeAcc> {
            &self.acc
        }

        /// Timestamp taken before the low-lock acquire.
        #[inline]
        pub(super) fn start(&self) -> u64 {
            now_ns()
        }

        #[inline]
        pub(super) fn record_acquire(&self, inherited: bool, start: u64) {
            let end = now_ns();
            self.counters.record_acquire(inherited);
            self.acquire_ns.record(end.saturating_sub(start));
            self.acc.record_wait(end.saturating_sub(start));
            if trace::is_enabled() {
                let flow_in = if inherited {
                    self.flow.swap(0, Ordering::Relaxed)
                } else {
                    0
                };
                trace::record(
                    start,
                    end,
                    self.level,
                    self.node,
                    SpanKind::Wait { inherited },
                    flow_in,
                    0,
                );
            }
        }

        #[inline]
        pub(super) fn record_pass(&self) {
            self.counters.record_pass_taken();
            self.ring.record(self.level, PassKind::Pass, thread_tag());
            // The inversion clock: remote-starvation detection counts
            // local hand-offs that happened while a waiter was parked.
            profile::global().record_pass(self.site.id());
            if trace::is_enabled() {
                let at = now_ns();
                let flow = trace::next_flow_id();
                self.flow.store(flow, Ordering::Relaxed);
                trace::record(at, at, self.level, self.node, SpanKind::Pass, 0, flow);
            }
        }

        #[inline]
        pub(super) fn record_release_up(&self, threshold_hit: bool) {
            self.counters.record_pass_declined(threshold_hit);
            self.ring
                .record(self.level, PassKind::ReleaseUp, thread_tag());
            if trace::is_enabled() {
                let at = now_ns();
                trace::record(
                    at,
                    at,
                    self.level,
                    self.node,
                    SpanKind::ReleaseUp {
                        forced: threshold_hit,
                    },
                    0,
                    0,
                );
            }
        }

        #[inline]
        pub(super) fn record_hint_hit(&self) {
            self.counters.record_hint_hit();
        }
    }

    /// Critical-section hold-time tracker carried by each handle; also
    /// publishes the thread's progress phase for the starvation
    /// watchdog.
    #[derive(Debug)]
    pub(super) struct HoldObs {
        hist: Arc<LogHistogram>,
        site: Arc<SiteAnchor>,
        wait_from: u64,
        acquired_at: u64,
    }

    impl HoldObs {
        pub(super) fn new(lock: &LockObs) -> Self {
            HoldObs {
                hist: Arc::clone(&lock.hold_ns),
                site: Arc::clone(&lock.site),
                wait_from: 0,
                acquired_at: 0,
            }
        }

        /// Entering the composed acquire (before any spinning).
        #[inline]
        pub(super) fn waiting(&mut self) {
            self.wait_from = now_ns();
            watchdog::note_wait(thread_tag());
            waitgraph::note_wait(self.site.id());
            // Parks can only happen while waiting; publish the site so
            // the parked-duration recorder can attribute the episode.
            #[cfg(feature = "park")]
            crate::parkglue::enter_wait(self.site.id());
        }

        #[inline]
        pub(super) fn acquired(&mut self) {
            self.acquired_at = now_ns();
            #[cfg(feature = "park")]
            crate::parkglue::exit_wait();
            let site = self.site.id();
            profile::global().record_wait(site, self.acquired_at.saturating_sub(self.wait_from));
            profile::global().record_acquire(site);
            watchdog::note_hold(thread_tag());
            waitgraph::note_acquired(site);
        }

        #[inline]
        pub(super) fn released(&mut self) {
            let end = now_ns();
            self.hist.record(end.saturating_sub(self.acquired_at));
            let site = self.site.id();
            profile::global().record_hold(site, end.saturating_sub(self.acquired_at));
            if trace::is_enabled() {
                trace::record(self.acquired_at, end, 0, 0, SpanKind::Hold, 0, 0);
            }
            watchdog::note_idle(thread_tag());
            waitgraph::note_released(site);
        }

        /// The composed acquire gave up before the lock was granted
        /// (deadline timeout): cancel the wait edge — nothing was
        /// acquired, so nothing joins the held set — and count the
        /// attempt in the process-wide timeout telemetry.
        #[cfg(feature = "deadline")]
        #[inline]
        pub(super) fn wait_abandoned(&mut self) {
            #[cfg(feature = "park")]
            crate::parkglue::exit_wait();
            watchdog::note_idle(thread_tag());
            waitgraph::note_wait_cancelled(self.site.id());
            clof_obs::deadline::record_timeout();
        }
    }
}

#[cfg(not(feature = "obs"))]
mod nodeobs {
    #[derive(Debug, Default)]
    pub(super) struct LockObs;

    impl LockObs {
        #[inline]
        pub(super) fn new(
            _label: &str,
            _shape: &str,
            _caller: &'static std::panic::Location<'static>,
        ) -> Self {
            LockObs
        }
    }

    #[derive(Debug)]
    pub(super) struct NodeObs;

    impl NodeObs {
        #[inline]
        pub(super) fn new(_level: usize, _lock: &LockObs) -> Self {
            NodeObs
        }

        #[inline(always)]
        pub(super) fn start(&self) -> u64 {
            0
        }

        #[inline(always)]
        pub(super) fn record_acquire(&self, _inherited: bool, _start: u64) {}

        #[inline(always)]
        pub(super) fn record_pass(&self) {}

        #[inline(always)]
        pub(super) fn record_release_up(&self, _threshold_hit: bool) {}

        #[inline(always)]
        pub(super) fn record_hint_hit(&self) {}
    }

    #[derive(Debug)]
    pub(super) struct HoldObs;

    impl HoldObs {
        #[inline]
        pub(super) fn new(_lock: &LockObs) -> Self {
            HoldObs
        }

        #[inline(always)]
        pub(super) fn waiting(&mut self) {}

        #[inline(always)]
        pub(super) fn acquired(&mut self) {}

        #[inline(always)]
        pub(super) fn released(&mut self) {}

        #[cfg(feature = "deadline")]
        #[inline(always)]
        pub(super) fn wait_abandoned(&mut self) {}
    }
}

/// Hand-off statistics of one cohort node (relaxed counters — exact
/// totals at quiescence, approximate snapshots while running).
#[derive(Debug, Default)]
struct NodeStats {
    /// Times the node's low lock was acquired through this node.
    acquisitions: AtomicU64,
    /// Releases that *passed* the high lock within the cohort.
    passes: AtomicU64,
    /// Releases that let the high lock go to other cohorts.
    releases_up: AtomicU64,
}

impl NodeStats {
    /// All three counters are owner-only: bumped while holding the
    /// node's low lock, so a plain load + store replaces the locked RMW
    /// (successive owners are ordered by the lock's release→acquire
    /// edge, which also publishes the store).
    #[inline]
    fn bump(counter: &AtomicU64) {
        let v = counter.load(Ordering::Relaxed);
        counter.store(v + 1, Ordering::Relaxed);
    }

    #[inline]
    fn note_acquisition(&self) {
        Self::bump(&self.acquisitions);
    }

    #[inline]
    fn note_pass(&self) {
        Self::bump(&self.passes);
    }

    #[inline]
    fn note_release_up(&self) {
        Self::bump(&self.releases_up);
    }
}

/// Per-level aggregate of [`DynClofLock::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelStats {
    /// Level index, 0 = innermost.
    pub level: usize,
    /// Low-lock acquisitions at this level.
    pub acquisitions: u64,
    /// Intra-cohort passes decided at this level.
    pub passes: u64,
    /// Full releases (high lock surrendered) decided at this level.
    pub releases_up: u64,
}

impl LevelStats {
    /// Fraction of release decisions at this level that stayed local —
    /// the locality the composition achieved (cf. the simulator's
    /// `handovers_by_level`).
    pub fn locality(&self) -> f64 {
        let total = self.passes + self.releases_up;
        if total == 0 {
            0.0
        } else {
            self.passes as f64 / total as f64
        }
    }
}

/// One cohort node in a dynamic CLoF tree.
pub struct DynNode {
    low: AnyLock,
    /// Metadata + the high-lock context; `None` context for the root.
    meta: LevelMeta<()>,
    high_ctx: UnsafeCell<Option<AnyContext>>,
    high: Option<Arc<DynNode>>,
    /// Whether acquires must maintain the read-indicator counter. False
    /// when the low lock natively answers `has_waiters` (the paper's
    /// §4.1.2 custom hint, [`LockInfo::waiter_hint`]): the release path
    /// will never consult the counter then, so maintaining it is pure
    /// coherence traffic on the acquire fast path.
    ///
    /// [`LockInfo::waiter_hint`]: clof_locks::LockInfo
    counter_waiters: bool,
    /// This node's sibling index under its parent — the stripe its
    /// upward acquires register on in the parent's read indicator.
    slot: u32,
    stats: NodeStats,
    obs: NodeObs,
}

// SAFETY: `high_ctx` is protected by the low lock exactly like the static
// composition's `LevelMeta` context cell (context invariant + release
// order); all other state is atomics or immutable after construction.
unsafe impl Sync for DynNode {}
// SAFETY: All owned data is `Send`.
unsafe impl Send for DynNode {}

impl DynNode {
    fn root(kind: LockKind, params: ClofParams, fanin: usize, level: usize, obs: &LockObs) -> Self {
        DynNode {
            low: AnyLock::new(kind),
            meta: LevelMeta::with_fanin(params, fanin),
            high_ctx: UnsafeCell::new(None),
            high: None,
            counter_waiters: !kind.info().waiter_hint,
            slot: 0,
            stats: NodeStats::default(),
            obs: NodeObs::new(level, obs),
        }
    }

    fn child(
        kind: LockKind,
        high: Arc<DynNode>,
        params: ClofParams,
        fanin: usize,
        slot: u32,
        level: usize,
        obs: &LockObs,
    ) -> Self {
        let high_ctx = high.low.new_context();
        DynNode {
            low: AnyLock::new(kind),
            meta: LevelMeta::with_fanin(params, fanin),
            high_ctx: UnsafeCell::new(Some(high_ctx)),
            high: Some(high),
            counter_waiters: !kind.info().waiter_hint,
            slot,
            stats: NodeStats::default(),
            obs: NodeObs::new(level, obs),
        }
    }

    /// Acquires this node's low lock, applying the level's spin budget
    /// when the waiting layer is compiled in (waiters spin the
    /// topology-derived budget, then park; the releaser's wake re-runs
    /// the full hand-off protocol, so the §4.1 invariants are untouched
    /// — parking only changes *where* a waiter waits, never the order
    /// grants are observed in).
    #[inline]
    fn low_acquire(&self, ctx: &mut AnyContext) {
        #[cfg(feature = "park")]
        self.low.acquire_budgeted(ctx, self.meta.spin_budget());
        #[cfg(not(feature = "park"))]
        self.low.acquire(ctx);
    }

    /// Recursive `lockgen` acquire (paper Figure 8). `stripe` is the
    /// caller's child position under this node (CPU index within a leaf
    /// cohort at level 0, the child's sibling slot above).
    fn acquire(&self, ctx: &mut AnyContext, stripe: u32) {
        let Some(high) = &self.high else {
            // Base case: the system-level basic lock.
            let start = self.obs.start();
            self.low_acquire(ctx);
            self.stats.note_acquisition();
            self.obs.record_acquire(false, start);
            return;
        };
        let start = self.obs.start();
        // The read-indicator bracket is skipped entirely when the low
        // lock natively reports waiters (paper §4.1.2) — the release
        // path takes the hint branch unconditionally then.
        if self.counter_waiters {
            self.meta.inc_waiters(stripe);
        }
        self.low_acquire(ctx);
        if self.counter_waiters {
            self.meta.dec_waiters(stripe);
        }
        self.stats.note_acquisition();
        // Window between winning the low lock and inspecting the pass
        // flag left by the previous owner.
        clof_locks::chaos::point("dyn-acquire-low-won");
        self.obs.record_acquire(self.meta.has_high_lock(), start);
        if !self.meta.has_high_lock() {
            self.meta.debug_ctx_enter();
            // SAFETY: We own the low lock; the context invariant grants
            // exclusive use of the high context, and the previous user's
            // writes are visible through the low lock's release→acquire
            // synchronization.
            let cell = unsafe { &mut *self.high_ctx.get() };
            let high_ctx = cell.as_mut().expect("non-root nodes have a high context");
            high.acquire(high_ctx, self.slot);
            self.meta.debug_ctx_exit();
        }
    }

    /// Recursive `lockgen` release (paper Figure 8).
    fn release(&self, ctx: &mut AnyContext) {
        let Some(high) = &self.high else {
            self.low.release(ctx);
            return;
        };
        let hint = self.low.has_waiters_hint(ctx);
        if hint.is_some() {
            self.obs.record_hint_hit();
        }
        let waiters = hint.unwrap_or_else(|| self.meta.has_waiters());
        if waiters && self.meta.keep_local() {
            self.stats.note_pass();
            self.obs.record_pass();
            self.meta.pass_high_lock();
            // Window between setting the pass flag and releasing the low
            // lock that publishes it to the successor.
            clof_locks::chaos::point("dyn-release-pass");
            self.low.release(ctx);
        } else {
            self.stats.note_release_up();
            // `waiters` still true here means keep_local hit its
            // threshold — a forced surrender, not an idle cohort.
            self.obs.record_release_up(waiters);
            self.meta.clear_high_lock();
            clof_locks::chaos::point("dyn-release-up");
            self.meta.debug_ctx_enter();
            // SAFETY: As in `acquire`; we still own the low lock. Release
            // order high → low is required by the context invariant
            // (paper §4.1.3): releasing low first would let a successor
            // race us on this context.
            let cell = unsafe { &mut *self.high_ctx.get() };
            let high_ctx = cell.as_mut().expect("non-root nodes have a high context");
            high.release(high_ctx);
            self.meta.debug_ctx_exit();
            self.low.release(ctx);
        }
    }

    /// Deadline-bounded recursive acquire: the same climb as
    /// [`acquire`](Self::acquire) under one *absolute* deadline shared
    /// by every level — the "single budget split across levels", with
    /// the split decided by where contention actually burned the time
    /// rather than a fixed per-level quota. On timeout the partially
    /// acquired prefix is fully unwound: this thread holds the low
    /// lock but never logically owned the tree (the pass flag is
    /// untouched), so a *plain* low release — no pass/release-up
    /// decision, no high-context access — restores exactly the state
    /// the next low-lock winner expects: climb for yourself.
    #[cfg(feature = "deadline")]
    fn try_acquire(
        &self,
        ctx: &mut AnyContext,
        stripe: u32,
        deadline: std::time::Instant,
    ) -> bool {
        let Some(high) = &self.high else {
            let start = self.obs.start();
            if !self.low.try_acquire_until(ctx, deadline) {
                return false;
            }
            self.stats.note_acquisition();
            self.obs.record_acquire(false, start);
            return true;
        };
        let start = self.obs.start();
        if self.counter_waiters {
            self.meta.inc_waiters(stripe);
        }
        let won = self.low.try_acquire_until(ctx, deadline);
        if self.counter_waiters {
            // Closed on both outcomes: a timed-out waiter must leave no
            // read-indicator residue (`queue_depth_hint() == 0` at
            // quiescence is the leak oracle).
            self.meta.dec_waiters(stripe);
        }
        if !won {
            return false;
        }
        self.stats.note_acquisition();
        clof_locks::chaos::point("dyn-acquire-low-won");
        self.obs.record_acquire(self.meta.has_high_lock(), start);
        if !self.meta.has_high_lock() {
            self.meta.debug_ctx_enter();
            // SAFETY: As in `acquire` — we own the low lock, so the
            // context invariant grants exclusive use of the high context.
            let cell = unsafe { &mut *self.high_ctx.get() };
            let high_ctx = cell.as_mut().expect("non-root nodes have a high context");
            let climbed = high.try_acquire(high_ctx, self.slot, deadline);
            self.meta.debug_ctx_exit();
            if !climbed {
                self.low.release(ctx);
                return false;
            }
        }
        true
    }

    /// This node's basic-lock kind.
    pub fn kind(&self) -> LockKind {
        self.low.kind()
    }
}

/// A complete CLoF lock for a machine: the tree of per-cohort nodes plus
/// the CPU → leaf mapping.
///
/// See the [crate docs](crate) for a usage example.
pub struct DynClofLock {
    leaves: Vec<Arc<DynNode>>,
    cpu_to_leaf: Vec<usize>,
    /// Each CPU's index within its leaf cohort — the read-indicator
    /// stripe its handle registers on.
    cpu_to_stripe: Vec<u32>,
    /// Every node of the tree in construction order, tagged with its
    /// level: the traversal list for `stats`/`obs_snapshot`/
    /// `queue_hints`, visiting each node exactly once without the old
    /// quadratic `seen` scan over leaf-to-root chains.
    nodes: Vec<(usize, Arc<DynNode>)>,
    /// Monomorphized dispatch for finalist compositions; `None` falls
    /// back to the enum tree.
    fast: Option<FastTier>,
    composition: Vec<LockKind>,
    name: String,
    obs: LockObs,
    /// Set when a holder panicked inside its critical section: the
    /// protected data may be mid-mutation. The flag is advisory at this
    /// layer — acquisition still works (the panicking holder's guard
    /// released the tree, so nobody hangs) and wrappers like
    /// `ClofMutex` turn it into `ClofError::Poisoned`.
    #[cfg(feature = "deadline")]
    poisoned: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for DynClofLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynClofLock")
            .field("composition", &self.name)
            .field("leaves", &self.leaves.len())
            .finish()
    }
}

impl DynClofLock {
    /// Builds the composition `locks` (innermost level first, one entry
    /// per hierarchy level) over `hierarchy`, with default parameters.
    ///
    /// # Errors
    ///
    /// Fails if the composition length does not match the hierarchy's
    /// level count, or if a component is unfair (use
    /// [`build_with`](Self::build_with) with `allow_unfair` to override —
    /// the paper only considers fair locks after §4.2.3).
    #[track_caller]
    pub fn build(hierarchy: &Hierarchy, locks: &[LockKind]) -> Result<Self, ClofError> {
        Self::build_with(hierarchy, locks, ClofParams::default(), false)
    }

    /// Builds with explicit parameters and fairness policy.
    #[track_caller]
    pub fn build_with(
        hierarchy: &Hierarchy,
        locks: &[LockKind],
        params: ClofParams,
        allow_unfair: bool,
    ) -> Result<Self, ClofError> {
        let per_level = vec![params; hierarchy.level_count()];
        Self::build_with_level_params(hierarchy, locks, &per_level, allow_unfair)
    }

    /// Builds with *per-level* parameters (innermost first) — HMCS tunes
    /// its keep-local threshold per level, and so can CLoF compositions.
    ///
    /// With the `obs` feature the new lock auto-registers a contention-
    /// profiler site; `#[track_caller]` makes the recorded construction
    /// location name the user's build call, not these builder internals.
    #[track_caller]
    pub fn build_with_level_params(
        hierarchy: &Hierarchy,
        locks: &[LockKind],
        params: &[ClofParams],
        allow_unfair: bool,
    ) -> Result<Self, ClofError> {
        if locks.len() != hierarchy.level_count() || params.len() != hierarchy.level_count() {
            return Err(ClofError::LevelCountMismatch {
                locks: locks.len().min(params.len()),
                levels: hierarchy.level_count(),
            });
        }
        if !allow_unfair {
            if let Some((level, &kind)) = locks.iter().enumerate().find(|&(_, k)| !k.is_fair()) {
                return Err(ClofError::UnfairComponent { kind, level });
            }
        }
        let levels = hierarchy.level_count();
        let name = crate::generator::composition_name(locks);
        // Topology shape recorded at the profiler site: cpu count plus
        // cohort counts per level, innermost first (e.g. `8cpu/4-2-1`).
        let shape = {
            let cohorts: Vec<String> = (0..levels)
                .map(|l| hierarchy.cohort_count(l).to_string())
                .collect();
            format!("{}cpu/{}", hierarchy.ncpus(), cohorts.join("-"))
        };
        let obs = LockObs::new(&name, &shape, std::panic::Location::caller());
        // Build from the root (outermost level) down, collecting every
        // node in construction order for the linear traversals.
        let mut all_nodes: Vec<(usize, Arc<DynNode>)> = Vec::new();
        let root_kind = locks[levels - 1];
        let root_fanin = cohort_layout(hierarchy, levels - 1)[0].0;
        let mut upper: Vec<Arc<DynNode>> = vec![Arc::new(DynNode::root(
            root_kind,
            params[levels - 1],
            root_fanin,
            levels - 1,
            &obs,
        ))];
        all_nodes.push((levels - 1, Arc::clone(&upper[0])));
        for level in (0..levels - 1).rev() {
            let layout = cohort_layout(hierarchy, level);
            let mut nodes = Vec::with_capacity(hierarchy.cohort_count(level));
            for (cohort, &(fanin, slot)) in layout.iter().enumerate() {
                let cpu = hierarchy.cohort_members(level, cohort)[0];
                let parent_cohort = hierarchy.cohort(level + 1, cpu);
                let node = Arc::new(DynNode::child(
                    locks[level],
                    Arc::clone(&upper[parent_cohort]),
                    params[level],
                    fanin,
                    slot,
                    level,
                    &obs,
                ));
                all_nodes.push((level, Arc::clone(&node)));
                nodes.push(node);
            }
            upper = nodes;
        }
        // Install topology-derived spin budgets: each level's waiters
        // spin inversely to the span of its cohorts before parking
        // (leaf/cache-local waiters longest, machine-spanning top-level
        // waiters soonest). Runtime-retunable via `set_spin_budget`.
        #[cfg(feature = "park")]
        for (level, node) in &all_nodes {
            node.meta.set_spin_budget(crate::level::spin_budget_for_span(
                hierarchy.cohort_span(*level),
            ));
        }
        // No handles exist yet, so the fast tier may resolve typed
        // pointers into the node-resident context cells race-free.
        let fast = FastTier::resolve(&upper, locks);
        Ok(DynClofLock {
            fast,
            leaves: upper,
            cpu_to_leaf: (0..hierarchy.ncpus())
                .map(|c| hierarchy.cohort(0, c))
                .collect(),
            cpu_to_stripe: cpu_stripes(hierarchy),
            nodes: all_nodes,
            composition: locks.to_vec(),
            name,
            obs,
            #[cfg(feature = "deadline")]
            poisoned: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// A per-thread handle entering at `cpu`'s leaf cohort.
    ///
    /// Finalist compositions get a monomorphized handle (statically
    /// dispatched node walk, no per-op enum `match`); everything else
    /// gets the generic enum-tree handle. Both speak the identical
    /// protocol on the same shared nodes, so handles of either tier
    /// interoperate freely on one lock.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the hierarchy used to build the lock.
    pub fn handle(&self, cpu: CpuId) -> DynHandle {
        let leaf_idx = self.cpu_to_leaf[cpu];
        let stripe = self.cpu_to_stripe[cpu];
        let leaf = Arc::clone(&self.leaves[leaf_idx]);
        let inner = match &self.fast {
            Some(tier) => tier.handle(leaf_idx, leaf, stripe),
            None => HandleInner::generic(leaf, stripe),
        };
        DynHandle {
            inner,
            hold: HoldObs::new(&self.obs),
        }
    }

    /// A handle forced onto the generic enum-dispatch tier even when the
    /// composition has a monomorphized fast path — the ablation control
    /// for benchmarks, and a mixed-tier stressor for the oracle.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the hierarchy used to build the lock.
    pub fn handle_generic(&self, cpu: CpuId) -> DynHandle {
        let leaf = Arc::clone(&self.leaves[self.cpu_to_leaf[cpu]]);
        DynHandle {
            inner: HandleInner::generic(leaf, self.cpu_to_stripe[cpu]),
            hold: HoldObs::new(&self.obs),
        }
    }

    /// A placement-tracking handle: enters at the leaf cohort of the
    /// CPU the thread *currently* runs on, resolved through the
    /// [`crate::cpu`] thread-local cache, and re-homed automatically
    /// when a periodic re-check observes a migration. Use this when
    /// callers have no pinned placement of their own.
    pub fn auto_handle(self: &Arc<Self>) -> AutoHandle {
        let cpu = crate::cpu::cached_cpu(self.cpu_to_leaf.len());
        AutoHandle {
            inner: self.handle(cpu),
            lock: Arc::clone(self),
            cpu,
        }
    }

    /// Which dispatch tier [`handle`](Self::handle) returns for this
    /// composition.
    pub fn dispatch_tier(&self) -> DispatchTier {
        if self.fast.is_some() {
            DispatchTier::Monomorphized
        } else {
            DispatchTier::Generic
        }
    }

    /// Read-indicator count currently registered at `cpu`'s leaf cohort,
    /// summed over stripes. Racy by nature (diagnostics); leaf levels
    /// whose low lock hints waiters natively keep no counter and always
    /// report 0.
    pub fn leaf_waiter_count(&self, cpu: CpuId) -> u32 {
        self.leaves[self.cpu_to_leaf[cpu]].meta.waiter_count()
    }

    /// Composition in the paper's notation, e.g. `"tkt-clh-tkt"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The composed kinds, innermost first.
    pub fn composition(&self) -> &[LockKind] {
        &self.composition
    }

    /// Whether this composition is starvation-free.
    pub fn is_fair(&self) -> bool {
        self.composition.iter().all(|k| k.is_fair())
    }

    /// Number of leaf cohorts.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Aggregated hand-off statistics per level (innermost first).
    ///
    /// A well-matched composition shows high [`LevelStats::locality`] at
    /// the inner levels — the real-lock counterpart of the simulator's
    /// per-level handover histogram.
    pub fn stats(&self) -> Vec<LevelStats> {
        let levels = self.composition.len();
        let mut out: Vec<LevelStats> = (0..levels)
            .map(|level| LevelStats {
                level,
                acquisitions: 0,
                passes: 0,
                releases_up: 0,
            })
            .collect();
        // The construction-order node list holds each node exactly once.
        for (level, node) in &self.nodes {
            out[*level].acquisitions += node.stats.acquisitions.load(Ordering::Relaxed);
            out[*level].passes += node.stats.passes.load(Ordering::Relaxed);
            out[*level].releases_up += node.stats.releases_up.load(Ordering::Relaxed);
        }
        out
    }

    /// Full telemetry snapshot: per-level counters and acquire-latency
    /// histograms (summed across cohorts), whole-lock hold-time
    /// histogram, and the surviving pass-event trace — everything
    /// [`clof_obs::render_json`]/[`clof_obs::render_prometheus`] and the
    /// `Display` impl consume. Exact at quiescence, approximate while
    /// threads are mid-acquire (same contract as [`Self::stats`]).
    #[cfg(feature = "obs")]
    pub fn obs_snapshot(&self) -> clof_obs::LockSnapshot {
        let mut levels: Vec<clof_obs::LevelSnapshot> = (0..self.composition.len())
            .map(|level| clof_obs::LevelSnapshot {
                level,
                ..Default::default()
            })
            .collect();
        for (level, node) in &self.nodes {
            let mut snap = node.obs.counters.snapshot(*level);
            snap.acquire_ns = node.obs.acquire_ns.snapshot();
            levels[*level].merge(&snap);
        }
        clof_obs::LockSnapshot {
            name: self.name.clone(),
            levels,
            hold_ns: self.obs.hold_ns.snapshot(),
            events_recorded: self.obs.ring.recorded(),
            events_dropped: self.obs.ring.dropped(),
            events: self.obs.ring.events(),
        }
    }

    /// Per-level waiter counts right now: `(level, queued_waiters)`
    /// summed over cohorts, innermost first. Approximate by nature (it
    /// races running acquires) — meant as the queue-shape hint in a
    /// starvation watchdog's diagnostic dump. Levels whose low lock
    /// natively hints waiters keep no read-indicator counter and always
    /// report 0 here.
    #[cfg(feature = "obs")]
    pub fn queue_hints(&self) -> Vec<(usize, u32)> {
        let mut out: Vec<(usize, u32)> =
            (0..self.composition.len()).map(|l| (l, 0)).collect();
        for (level, node) in &self.nodes {
            out[*level].1 += node.meta.waiter_count();
        }
        out
    }

    /// Total read-indicator count registered anywhere in the tree right
    /// now, summed over levels and cohorts. Racy diagnostic (it races
    /// running acquires), but *zero is trustworthy at quiescence*: once
    /// no thread is inside acquire, every registered waiter has
    /// deregistered. The adaptation layer's migration drain uses this
    /// as a secondary sanity check on the outgoing tree. Levels whose
    /// low lock hints waiters natively keep no counter and contribute 0.
    pub fn queue_depth_hint(&self) -> u32 {
        self.nodes
            .iter()
            .map(|(_, node)| node.meta.waiter_count())
            .sum()
    }

    /// Marks the protected state suspect: a holder panicked inside its
    /// critical section. Called by guard `Drop` impls that detect
    /// `std::thread::panicking()` — *after* marking they still release,
    /// so waiters never hang on a dead holder; they observe the flag
    /// instead. Release ordering pairs with the `Acquire` in
    /// [`is_poisoned`] so the flag is visible to the next acquirer.
    #[cfg(feature = "deadline")]
    pub fn poison(&self) {
        self.poisoned
            .store(true, std::sync::atomic::Ordering::Release);
        #[cfg(feature = "obs")]
        clof_obs::deadline::record_poison();
    }

    /// Whether a holder has panicked while holding this lock.
    #[cfg(feature = "deadline")]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Clears the poison flag after the caller has repaired (or chosen
    /// to trust) the protected state — the `Mutex::clear_poison`
    /// recovery idiom.
    #[cfg(feature = "deadline")]
    pub fn clear_poison(&self) {
        self.poisoned
            .store(false, std::sync::atomic::Ordering::Release);
    }

    /// Current per-level spin budgets `(level, rounds)`, innermost
    /// first. All cohorts of one level share a budget, so one node per
    /// level reports it. The adaptation layer snapshots this on the
    /// outgoing tree and replays it onto the incoming one, carrying the
    /// waiting policy across hot-swaps.
    #[cfg(feature = "park")]
    pub fn spin_budgets(&self) -> Vec<(usize, u32)> {
        let mut out: Vec<Option<u32>> = vec![None; self.composition.len()];
        for (level, node) in &self.nodes {
            out[*level].get_or_insert(node.meta.spin_budget());
        }
        out.into_iter()
            .enumerate()
            .map(|(level, b)| (level, b.unwrap_or(clof_locks::SPIN_FOREVER)))
            .collect()
    }

    /// Retunes the spin budget of every cohort node at `level` (rounds a
    /// waiter spins before parking; [`clof_locks::SPIN_FOREVER`] turns
    /// parking off at that level). In-flight waiters may still use the
    /// old value — the budget shapes the spin/park trade-off only and
    /// never affects correctness.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside the composition.
    #[cfg(feature = "park")]
    pub fn set_spin_budget(&self, level: usize, rounds: u32) {
        assert!(
            level < self.composition.len(),
            "level {level} out of range for a {}-level composition",
            self.composition.len()
        );
        for (l, node) in &self.nodes {
            if *l == level {
                node.meta.set_spin_budget(rounds);
            }
        }
    }

    /// This lock's contention-profiler site id in the process-global
    /// [`clof_obs::registry`] ([`clof_obs::INVALID_SITE`] if the table
    /// was full at construction). Stable across adaptation swaps once
    /// [`Self::rebind_site_from`] has run.
    #[cfg(feature = "obs")]
    pub fn site_id(&self) -> u32 {
        self.obs.site.id()
    }

    /// The current contention-profile row for this lock's site: wait and
    /// hold attribution, traffic, and the per-(level, node) breakdown.
    /// `None` when the site table was full at construction.
    #[cfg(feature = "obs")]
    pub fn site_profile(&self) -> Option<clof_obs::SiteProfile> {
        let id = self.obs.site.id();
        clof_obs::profile::global()
            .snapshot()
            .sites
            .into_iter()
            .find(|s| s.id == id)
    }

    /// Adopts `outgoing`'s profiler site so an adaptation swap keeps a
    /// stable site id: this lock's provisional registration is released,
    /// the adopted site's generation is bumped, its label updated to
    /// this composition, and this tree's per-node accumulators follow it
    /// onto the adopted id. No-op when `outgoing`'s site is dead or
    /// already this lock's own.
    #[cfg(feature = "obs")]
    pub fn rebind_site_from(&self, outgoing: &DynClofLock) {
        let before = self.obs.site.id();
        self.obs.site.rebind(&outgoing.obs.site, &self.name);
        let after = self.obs.site.id();
        if after != before {
            for (_, node) in &self.nodes {
                clof_obs::profile::global().attach_node(after, node.obs.acc());
            }
        }
    }

    /// Renames this lock's registry site (the `tas+` fast-path wrapper
    /// labels the site it wraps).
    #[cfg(feature = "obs")]
    pub(crate) fn relabel_site(&self, label: &str) {
        clof_obs::registry::global().relabel(self.obs.site.id(), label);
    }

    /// The shared site anchor (for wrappers that attribute their own
    /// wait/hold to this lock's site, e.g. the TAS gate).
    #[cfg(feature = "obs")]
    pub(crate) fn site_anchor(&self) -> Arc<clof_obs::SiteAnchor> {
        Arc::clone(&self.obs.site)
    }
}

/// Which code path [`DynClofLock::handle`] dispatches through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchTier {
    /// A finalist composition: statically-typed node walk, no per-op
    /// enum `match`.
    Monomorphized,
    /// The generic enum tree (exhaustive-generator territory).
    Generic,
}

/// The monomorphized fast-dispatch tier.
///
/// The exhaustive generator needs the enum tree — `N^M` compositions
/// cannot all be monomorphized. But `select` only ever ships a handful
/// of finalists, and those pay the per-op `AnyLock`/`AnyContext` match
/// on every level transition for no reason. This module re-types the
/// *already built* enum tree for the finalist shapes: at construction
/// (before any handle exists) it resolves typed pointers to each level's
/// lock and node-resident high context, and handles then run a
/// statically-dispatched replica of `DynNode::acquire`/`release` —
/// identical protocol, same shared state, same chaos points — behind
/// the same `DynClofLock` API. Fast and generic handles interoperate on
/// one lock because neither owns any protocol state privately.
mod fastdisp {
    use std::ptr::NonNull;
    use std::sync::Arc;

    use clof_locks::{ClhLock, Hemlock, McsLock, TicketLock};

    use super::{DynNode, HandleInner};
    use crate::kind::{LockKind, TypedLock};

    /// Typed pointers for one level of a finalist chain.
    struct Level<L: TypedLock> {
        node: NonNull<DynNode>,
        lock: NonNull<L>,
    }

    impl<L: TypedLock> Clone for Level<L> {
        fn clone(&self) -> Self {
            Level {
                node: self.node,
                lock: self.lock,
            }
        }
    }

    impl<L: TypedLock> Level<L> {
        fn resolve(node: &Arc<DynNode>) -> Option<Self> {
            Some(Level {
                node: NonNull::from(&**node),
                lock: NonNull::from(L::from_any(&node.low)?),
            })
        }
    }

    /// Resolved 3-level template for one leaf: node/lock pointers per
    /// level plus the node-resident contexts the upper levels are
    /// acquired through. Contexts live inside `DynNode::high_ctx` cells
    /// (stable addresses behind `Arc`s) and are only dereferenced while
    /// owning the level below, per the context invariant.
    pub(super) struct Fast3<L0: TypedLock, L1: TypedLock, L2: TypedLock> {
        l0: Level<L0>,
        l1: Level<L1>,
        c1: NonNull<L1::Context>,
        l2: Level<L2>,
        c2: NonNull<L2::Context>,
    }

    impl<L0: TypedLock, L1: TypedLock, L2: TypedLock> Clone for Fast3<L0, L1, L2> {
        fn clone(&self) -> Self {
            Fast3 {
                l0: self.l0.clone(),
                l1: self.l1.clone(),
                c1: self.c1,
                l2: self.l2.clone(),
                c2: self.c2,
            }
        }
    }

    // SAFETY: The pointers target nodes owned by the `DynClofLock`'s
    // `Arc` chain (handles additionally pin the chain through their leaf
    // `Arc`), and the context cells are accessed only under the context
    // invariant — exactly the discipline `DynNode`'s own `Sync` impl
    // relies on.
    unsafe impl<L0: TypedLock, L1: TypedLock, L2: TypedLock> Send for Fast3<L0, L1, L2> {}
    unsafe impl<L0: TypedLock, L1: TypedLock, L2: TypedLock> Sync for Fast3<L0, L1, L2> {}

    impl<L0: TypedLock, L1: TypedLock, L2: TypedLock> Fast3<L0, L1, L2> {
        /// Resolves the typed template for `leaf`'s 3-level chain.
        ///
        /// Must run before any handle exists (no concurrent context
        /// users); returns `None` — generic fallback — if any level's
        /// kind fails to downcast or the chain depth is not 3.
        fn resolve(leaf: &Arc<DynNode>) -> Option<Self> {
            let l0 = Level::<L0>::resolve(leaf)?;
            let mid = leaf.high.as_ref()?;
            let l1 = Level::<L1>::resolve(mid)?;
            // SAFETY: construction-time exclusive access (no handles yet).
            let c1 = unsafe { &mut *leaf.high_ctx.get() };
            let c1 = NonNull::from(L1::ctx_from_any(c1.as_mut()?)?);
            let root = mid.high.as_ref()?;
            if root.high.is_some() {
                return None;
            }
            let l2 = Level::<L2>::resolve(root)?;
            // SAFETY: as above.
            let c2 = unsafe { &mut *mid.high_ctx.get() };
            let c2 = NonNull::from(L2::ctx_from_any(c2.as_mut()?)?);
            Some(Fast3 {
                l0,
                l1,
                c1,
                l2,
                c2,
            })
        }
    }

    /// Resolved 2-level template, same contract as [`Fast3`].
    pub(super) struct Fast2<L0: TypedLock, L1: TypedLock> {
        l0: Level<L0>,
        l1: Level<L1>,
        c1: NonNull<L1::Context>,
    }

    impl<L0: TypedLock, L1: TypedLock> Clone for Fast2<L0, L1> {
        fn clone(&self) -> Self {
            Fast2 {
                l0: self.l0.clone(),
                l1: self.l1.clone(),
                c1: self.c1,
            }
        }
    }

    // SAFETY: See `Fast3`.
    unsafe impl<L0: TypedLock, L1: TypedLock> Send for Fast2<L0, L1> {}
    unsafe impl<L0: TypedLock, L1: TypedLock> Sync for Fast2<L0, L1> {}

    impl<L0: TypedLock, L1: TypedLock> Fast2<L0, L1> {
        fn resolve(leaf: &Arc<DynNode>) -> Option<Self> {
            let l0 = Level::<L0>::resolve(leaf)?;
            let root = leaf.high.as_ref()?;
            if root.high.is_some() {
                return None;
            }
            let l1 = Level::<L1>::resolve(root)?;
            // SAFETY: construction-time exclusive access (no handles yet).
            let c1 = unsafe { &mut *leaf.high_ctx.get() };
            let c1 = NonNull::from(L1::ctx_from_any(c1.as_mut()?)?);
            Some(Fast2 { l0, l1, c1 })
        }
    }

    /// Statically-dispatched replica of `DynNode::acquire`'s inductive
    /// case: identical step order on the same shared node state, with
    /// the `counter_waiters` branch resolved at monomorphization
    /// (`L::INFO.waiter_hint` matches the node's flag by construction).
    /// `climb` acquires the next level up.
    #[inline]
    fn acquire_level<L: TypedLock>(
        node: &DynNode,
        lock: &L,
        ctx: &mut L::Context,
        stripe: u32,
        climb: impl FnOnce(),
    ) {
        let start = node.obs.start();
        if !L::INFO.waiter_hint {
            node.meta.inc_waiters(stripe);
        }
        #[cfg(feature = "park")]
        lock.acquire_budgeted(ctx, node.meta.spin_budget());
        #[cfg(not(feature = "park"))]
        lock.acquire(ctx);
        if !L::INFO.waiter_hint {
            node.meta.dec_waiters(stripe);
        }
        node.stats.note_acquisition();
        clof_locks::chaos::point("dyn-acquire-low-won");
        node.obs.record_acquire(node.meta.has_high_lock(), start);
        if !node.meta.has_high_lock() {
            node.meta.debug_ctx_enter();
            climb();
            node.meta.debug_ctx_exit();
        }
    }

    /// Base case: the system-level basic lock.
    #[inline]
    fn acquire_root<L: TypedLock>(node: &DynNode, lock: &L, ctx: &mut L::Context) {
        let start = node.obs.start();
        #[cfg(feature = "park")]
        lock.acquire_budgeted(ctx, node.meta.spin_budget());
        #[cfg(not(feature = "park"))]
        lock.acquire(ctx);
        node.stats.note_acquisition();
        node.obs.record_acquire(false, start);
    }

    /// Statically-dispatched replica of `DynNode::release`'s inductive
    /// case; `climb` releases the next level up (taken on release-up
    /// only, before the low release — paper §4.1.3 order).
    #[inline]
    fn release_level<L: TypedLock>(
        node: &DynNode,
        lock: &L,
        ctx: &mut L::Context,
        climb: impl FnOnce(),
    ) {
        let hint = lock.has_waiters_hint(ctx);
        if hint.is_some() {
            node.obs.record_hint_hit();
        }
        let waiters = hint.unwrap_or_else(|| node.meta.has_waiters());
        if waiters && node.meta.keep_local() {
            node.stats.note_pass();
            node.obs.record_pass();
            node.meta.pass_high_lock();
            clof_locks::chaos::point("dyn-release-pass");
            lock.release(ctx);
        } else {
            node.stats.note_release_up();
            node.obs.record_release_up(waiters);
            node.meta.clear_high_lock();
            clof_locks::chaos::point("dyn-release-up");
            node.meta.debug_ctx_enter();
            climb();
            node.meta.debug_ctx_exit();
            lock.release(ctx);
        }
    }

    /// Deadline-bounded replica of [`acquire_level`]: `climb` returns
    /// whether the upper levels were won; on a local timeout or a
    /// failed climb the level unwinds (waiter bracket closed, low lock
    /// plainly released — the pass flag was never touched) and reports
    /// `false` down the chain.
    #[cfg(feature = "deadline")]
    #[inline]
    fn try_acquire_level<L: TypedLock>(
        node: &DynNode,
        lock: &L,
        ctx: &mut L::Context,
        stripe: u32,
        deadline: std::time::Instant,
        climb: impl FnOnce() -> bool,
    ) -> bool {
        let start = node.obs.start();
        if !L::INFO.waiter_hint {
            node.meta.inc_waiters(stripe);
        }
        let won = lock.try_acquire_until(ctx, deadline);
        if !L::INFO.waiter_hint {
            node.meta.dec_waiters(stripe);
        }
        if !won {
            return false;
        }
        node.stats.note_acquisition();
        clof_locks::chaos::point("dyn-acquire-low-won");
        node.obs.record_acquire(node.meta.has_high_lock(), start);
        if !node.meta.has_high_lock() {
            node.meta.debug_ctx_enter();
            let climbed = climb();
            node.meta.debug_ctx_exit();
            if !climbed {
                lock.release(ctx);
                return false;
            }
        }
        true
    }

    /// Deadline-bounded replica of [`acquire_root`].
    #[cfg(feature = "deadline")]
    #[inline]
    fn try_acquire_root<L: TypedLock>(
        node: &DynNode,
        lock: &L,
        ctx: &mut L::Context,
        deadline: std::time::Instant,
    ) -> bool {
        let start = node.obs.start();
        if !lock.try_acquire_until(ctx, deadline) {
            return false;
        }
        node.stats.note_acquisition();
        node.obs.record_acquire(false, start);
        true
    }

    /// Per-thread fast handle over a [`Fast3`] template: owns the leaf
    /// context and its indicator stripe; the leaf `Arc` pins the whole
    /// chain (each node holds its parent).
    pub(super) struct Fast3Handle<L0: TypedLock, L1: TypedLock, L2: TypedLock> {
        t: Fast3<L0, L1, L2>,
        ctx0: L0::Context,
        stripe: u32,
        _leaf: Arc<DynNode>,
    }

    impl<L0: TypedLock, L1: TypedLock, L2: TypedLock> Fast3Handle<L0, L1, L2> {
        pub(super) fn new(t: &Fast3<L0, L1, L2>, leaf: Arc<DynNode>, stripe: u32) -> Self {
            Fast3Handle {
                t: t.clone(),
                ctx0: L0::Context::default(),
                stripe,
                _leaf: leaf,
            }
        }

        #[inline]
        pub(super) fn acquire(&mut self) {
            // SAFETY: Node and lock pointers are pinned by `_leaf`'s
            // parent chain; the upper contexts are dereferenced only
            // inside the `climb` closures, i.e. while owning the level
            // below them (context invariant), and `debug_ctx_enter`
            // still guards the bracket in testkit/debug builds.
            unsafe {
                let n0 = self.t.l0.node.as_ref();
                let n1 = self.t.l1.node.as_ref();
                let n2 = self.t.l2.node.as_ref();
                let (l1, l2) = (self.t.l1.lock.as_ref(), self.t.l2.lock.as_ref());
                let (c1, c2) = (self.t.c1, self.t.c2);
                acquire_level(n0, self.t.l0.lock.as_ref(), &mut self.ctx0, self.stripe, || {
                    acquire_level(n1, l1, &mut *c1.as_ptr(), n0.slot, || {
                        acquire_root(n2, l2, &mut *c2.as_ptr());
                    });
                });
            }
        }

        #[cfg(feature = "deadline")]
        #[inline]
        pub(super) fn try_acquire(&mut self, deadline: std::time::Instant) -> bool {
            // SAFETY: See `acquire`. On the unwind paths each level
            // releases only what its own frame won (after its climb
            // reported failure), so ownership never outlives the frame
            // that took it and the contexts stay bracketed.
            unsafe {
                let n0 = self.t.l0.node.as_ref();
                let n1 = self.t.l1.node.as_ref();
                let n2 = self.t.l2.node.as_ref();
                let (l1, l2) = (self.t.l1.lock.as_ref(), self.t.l2.lock.as_ref());
                let (c1, c2) = (self.t.c1, self.t.c2);
                try_acquire_level(
                    n0,
                    self.t.l0.lock.as_ref(),
                    &mut self.ctx0,
                    self.stripe,
                    deadline,
                    || {
                        try_acquire_level(n1, l1, &mut *c1.as_ptr(), n0.slot, deadline, || {
                            try_acquire_root(n2, l2, &mut *c2.as_ptr(), deadline)
                        })
                    },
                )
            }
        }

        #[inline]
        pub(super) fn release(&mut self) {
            // SAFETY: As in `acquire`; release climbs only while still
            // owning the lower level (high before low, paper §4.1.3).
            unsafe {
                let n0 = self.t.l0.node.as_ref();
                let n1 = self.t.l1.node.as_ref();
                let (l1, l2) = (self.t.l1.lock.as_ref(), self.t.l2.lock.as_ref());
                let (c1, c2) = (self.t.c1, self.t.c2);
                release_level(n0, self.t.l0.lock.as_ref(), &mut self.ctx0, || {
                    release_level(n1, l1, &mut *c1.as_ptr(), || {
                        l2.release(&mut *c2.as_ptr());
                    });
                });
            }
        }
    }

    /// Per-thread fast handle over a [`Fast2`] template.
    pub(super) struct Fast2Handle<L0: TypedLock, L1: TypedLock> {
        t: Fast2<L0, L1>,
        ctx0: L0::Context,
        stripe: u32,
        _leaf: Arc<DynNode>,
    }

    impl<L0: TypedLock, L1: TypedLock> Fast2Handle<L0, L1> {
        pub(super) fn new(t: &Fast2<L0, L1>, leaf: Arc<DynNode>, stripe: u32) -> Self {
            Fast2Handle {
                t: t.clone(),
                ctx0: L0::Context::default(),
                stripe,
                _leaf: leaf,
            }
        }

        #[inline]
        pub(super) fn acquire(&mut self) {
            // SAFETY: See `Fast3Handle::acquire`.
            unsafe {
                let n0 = self.t.l0.node.as_ref();
                let n1 = self.t.l1.node.as_ref();
                let l1 = self.t.l1.lock.as_ref();
                let c1 = self.t.c1;
                acquire_level(n0, self.t.l0.lock.as_ref(), &mut self.ctx0, self.stripe, || {
                    acquire_root(n1, l1, &mut *c1.as_ptr());
                });
            }
        }

        #[cfg(feature = "deadline")]
        #[inline]
        pub(super) fn try_acquire(&mut self, deadline: std::time::Instant) -> bool {
            // SAFETY: See `Fast3Handle::try_acquire`.
            unsafe {
                let n0 = self.t.l0.node.as_ref();
                let n1 = self.t.l1.node.as_ref();
                let l1 = self.t.l1.lock.as_ref();
                let c1 = self.t.c1;
                try_acquire_level(
                    n0,
                    self.t.l0.lock.as_ref(),
                    &mut self.ctx0,
                    self.stripe,
                    deadline,
                    || try_acquire_root(n1, l1, &mut *c1.as_ptr(), deadline),
                )
            }
        }

        #[inline]
        pub(super) fn release(&mut self) {
            // SAFETY: See `Fast3Handle::release`.
            unsafe {
                let n0 = self.t.l0.node.as_ref();
                let l1 = self.t.l1.lock.as_ref();
                let c1 = self.t.c1;
                release_level(n0, self.t.l0.lock.as_ref(), &mut self.ctx0, || {
                    l1.release(&mut *c1.as_ptr());
                });
            }
        }
    }

    /// The finalist set: one pre-resolved template vector (indexed by
    /// leaf) per composition `select` ships — the HC/LC winners from
    /// EXPERIMENTS.md plus the homogeneous shapes the stress oracle
    /// leans on.
    pub(super) enum FastTier {
        McsClhTkt(Vec<Fast3<McsLock, ClhLock, TicketLock>>),
        ClhClhTkt(Vec<Fast3<ClhLock, ClhLock, TicketLock>>),
        ClhClhHem(Vec<Fast3<ClhLock, ClhLock, Hemlock>>),
        TktTktTkt(Vec<Fast3<TicketLock, TicketLock, TicketLock>>),
        TktTkt(Vec<Fast2<TicketLock, TicketLock>>),
        McsTkt(Vec<Fast2<McsLock, TicketLock>>),
        ClhTkt(Vec<Fast2<ClhLock, TicketLock>>),
    }

    impl FastTier {
        /// Resolves the fast tier for `locks` if it is a finalist shape;
        /// `None` keeps the generic enum dispatch. Must be called during
        /// lock construction, before any handle exists.
        pub(super) fn resolve(leaves: &[Arc<DynNode>], locks: &[LockKind]) -> Option<FastTier> {
            use LockKind::{Clh, Hemlock as Hem, Mcs, Ticket};
            fn all3<L0: TypedLock, L1: TypedLock, L2: TypedLock>(
                leaves: &[Arc<DynNode>],
            ) -> Option<Vec<Fast3<L0, L1, L2>>> {
                leaves.iter().map(Fast3::resolve).collect()
            }
            fn all2<L0: TypedLock, L1: TypedLock>(
                leaves: &[Arc<DynNode>],
            ) -> Option<Vec<Fast2<L0, L1>>> {
                leaves.iter().map(Fast2::resolve).collect()
            }
            match locks {
                [Mcs, Clh, Ticket] => Some(FastTier::McsClhTkt(all3(leaves)?)),
                [Clh, Clh, Ticket] => Some(FastTier::ClhClhTkt(all3(leaves)?)),
                [Clh, Clh, Hem] => Some(FastTier::ClhClhHem(all3(leaves)?)),
                [Ticket, Ticket, Ticket] => Some(FastTier::TktTktTkt(all3(leaves)?)),
                [Ticket, Ticket] => Some(FastTier::TktTkt(all2(leaves)?)),
                [Mcs, Ticket] => Some(FastTier::McsTkt(all2(leaves)?)),
                [Clh, Ticket] => Some(FastTier::ClhTkt(all2(leaves)?)),
                _ => None,
            }
        }

        /// Builds the fast handle for `leaf_idx`.
        pub(super) fn handle(
            &self,
            leaf_idx: usize,
            leaf: Arc<DynNode>,
            stripe: u32,
        ) -> HandleInner {
            match self {
                FastTier::McsClhTkt(t) => {
                    HandleInner::McsClhTkt(Fast3Handle::new(&t[leaf_idx], leaf, stripe))
                }
                FastTier::ClhClhTkt(t) => {
                    HandleInner::ClhClhTkt(Fast3Handle::new(&t[leaf_idx], leaf, stripe))
                }
                FastTier::ClhClhHem(t) => {
                    HandleInner::ClhClhHem(Fast3Handle::new(&t[leaf_idx], leaf, stripe))
                }
                FastTier::TktTktTkt(t) => {
                    HandleInner::TktTktTkt(Fast3Handle::new(&t[leaf_idx], leaf, stripe))
                }
                FastTier::TktTkt(t) => {
                    HandleInner::TktTkt(Fast2Handle::new(&t[leaf_idx], leaf, stripe))
                }
                FastTier::McsTkt(t) => {
                    HandleInner::McsTkt(Fast2Handle::new(&t[leaf_idx], leaf, stripe))
                }
                FastTier::ClhTkt(t) => {
                    HandleInner::ClhTkt(Fast2Handle::new(&t[leaf_idx], leaf, stripe))
                }
            }
        }
    }
}

/// Dispatch state of one handle: either the generic enum walk or a
/// monomorphized finalist walk.
enum HandleInner {
    Generic {
        leaf: Arc<DynNode>,
        ctx: AnyContext,
        stripe: u32,
    },
    McsClhTkt(fastdisp::Fast3Handle<clof_locks::McsLock, clof_locks::ClhLock, clof_locks::TicketLock>),
    ClhClhTkt(fastdisp::Fast3Handle<clof_locks::ClhLock, clof_locks::ClhLock, clof_locks::TicketLock>),
    ClhClhHem(fastdisp::Fast3Handle<clof_locks::ClhLock, clof_locks::ClhLock, clof_locks::Hemlock>),
    TktTktTkt(
        fastdisp::Fast3Handle<clof_locks::TicketLock, clof_locks::TicketLock, clof_locks::TicketLock>,
    ),
    TktTkt(fastdisp::Fast2Handle<clof_locks::TicketLock, clof_locks::TicketLock>),
    McsTkt(fastdisp::Fast2Handle<clof_locks::McsLock, clof_locks::TicketLock>),
    ClhTkt(fastdisp::Fast2Handle<clof_locks::ClhLock, clof_locks::TicketLock>),
}

impl HandleInner {
    fn generic(leaf: Arc<DynNode>, stripe: u32) -> Self {
        let ctx = leaf.low.new_context();
        HandleInner::Generic { leaf, ctx, stripe }
    }
}

/// A per-thread handle: the leaf entry point plus this thread's leaf
/// context, dispatched through the tier `handle()` selected.
pub struct DynHandle {
    inner: HandleInner,
    hold: HoldObs,
}

impl DynHandle {
    /// Acquires the composed lock.
    pub fn acquire(&mut self) {
        self.hold.waiting();
        // The only per-op dispatch: one match at the handle, not one per
        // level transition.
        match &mut self.inner {
            HandleInner::Generic { leaf, ctx, stripe } => leaf.acquire(ctx, *stripe),
            HandleInner::McsClhTkt(h) => h.acquire(),
            HandleInner::ClhClhTkt(h) => h.acquire(),
            HandleInner::ClhClhHem(h) => h.acquire(),
            HandleInner::TktTktTkt(h) => h.acquire(),
            HandleInner::TktTkt(h) => h.acquire(),
            HandleInner::McsTkt(h) => h.acquire(),
            HandleInner::ClhTkt(h) => h.acquire(),
        }
        self.hold.acquired();
    }

    /// Deadline-bounded acquire: one *absolute* deadline bounds the
    /// whole climb, every level spending from the same budget. Returns
    /// `false` on timeout, with every partially-acquired level unwound
    /// — the handle is immediately reusable and no queue node, waiter
    /// count, or wait-graph edge survives the failed attempt.
    #[cfg(feature = "deadline")]
    pub fn try_acquire_until(&mut self, deadline: std::time::Instant) -> bool {
        self.hold.waiting();
        let won = match &mut self.inner {
            HandleInner::Generic { leaf, ctx, stripe } => leaf.try_acquire(ctx, *stripe, deadline),
            HandleInner::McsClhTkt(h) => h.try_acquire(deadline),
            HandleInner::ClhClhTkt(h) => h.try_acquire(deadline),
            HandleInner::ClhClhHem(h) => h.try_acquire(deadline),
            HandleInner::TktTktTkt(h) => h.try_acquire(deadline),
            HandleInner::TktTkt(h) => h.try_acquire(deadline),
            HandleInner::McsTkt(h) => h.try_acquire(deadline),
            HandleInner::ClhTkt(h) => h.try_acquire(deadline),
        };
        if won {
            self.hold.acquired();
        } else {
            self.hold.wait_abandoned();
        }
        won
    }

    /// [`try_acquire_until`](Self::try_acquire_until) with a relative
    /// budget measured from now.
    #[cfg(feature = "deadline")]
    pub fn try_acquire_for(&mut self, budget: std::time::Duration) -> bool {
        self.try_acquire_until(std::time::Instant::now() + budget)
    }

    /// Releases the composed lock.
    ///
    /// Must only be called while held through this handle.
    pub fn release(&mut self) {
        self.hold.released();
        match &mut self.inner {
            HandleInner::Generic { leaf, ctx, .. } => leaf.release(ctx),
            HandleInner::McsClhTkt(h) => h.release(),
            HandleInner::ClhClhTkt(h) => h.release(),
            HandleInner::ClhClhHem(h) => h.release(),
            HandleInner::TktTktTkt(h) => h.release(),
            HandleInner::TktTkt(h) => h.release(),
            HandleInner::McsTkt(h) => h.release(),
            HandleInner::ClhTkt(h) => h.release(),
        }
    }
}

/// A [`DynHandle`] that tracks the thread's placement by itself.
///
/// Created by [`DynClofLock::auto_handle`]. Each acquire consults the
/// [`crate::cpu`] thread-local cache (one TLS read on the hot path; the
/// `getcpu` syscall only every [`crate::cpu::RECHECK_PERIOD`] calls)
/// and, when the thread migrated to a CPU of a different leaf cohort,
/// swaps the inner handle *between* critical sections — the old handle
/// is idle at that point, so its contexts are quiescent and the
/// re-home cannot violate the context invariant. A stale placement
/// inside one re-check period merely enters through the old leaf,
/// which CLoF's thread-obliviousness makes correct (just not
/// NUMA-optimal).
pub struct AutoHandle {
    lock: Arc<DynClofLock>,
    inner: DynHandle,
    cpu: CpuId,
}

impl AutoHandle {
    /// Acquires the composed lock through the current placement's leaf.
    pub fn acquire(&mut self) {
        let cpu = crate::cpu::cached_cpu(self.lock.cpu_to_leaf.len());
        if cpu != self.cpu {
            self.inner = self.lock.handle(cpu);
            self.cpu = cpu;
        }
        self.inner.acquire();
    }

    /// Deadline-bounded acquire through the current placement's leaf;
    /// see [`DynHandle::try_acquire_until`]. Re-homing happens before
    /// the attempt, between critical sections, exactly as in
    /// [`acquire`](Self::acquire) — a timed-out attempt leaves the
    /// re-homed handle in place (the placement is still correct).
    #[cfg(feature = "deadline")]
    pub fn try_acquire_until(&mut self, deadline: std::time::Instant) -> bool {
        let cpu = crate::cpu::cached_cpu(self.lock.cpu_to_leaf.len());
        if cpu != self.cpu {
            self.inner = self.lock.handle(cpu);
            self.cpu = cpu;
        }
        self.inner.try_acquire_until(deadline)
    }

    /// [`try_acquire_until`](Self::try_acquire_until) with a relative
    /// budget measured from now.
    #[cfg(feature = "deadline")]
    pub fn try_acquire_for(&mut self, budget: std::time::Duration) -> bool {
        self.try_acquire_until(std::time::Instant::now() + budget)
    }

    /// Releases the composed lock.
    ///
    /// Must only be called while held through this handle.
    pub fn release(&mut self) {
        self.inner.release();
    }

    /// The placement the handle last entered through.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn auto_handle_rehomes_after_simulated_migration() {
        // tiny(): 8 CPUs, leaf cohorts of 2 — CPU 0 and CPU 7 sit in
        // different cohorts at every level.
        let h = platforms::tiny();
        let lock =
            Arc::new(DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap());
        crate::cpu::testkit::set_override(Some(0));
        crate::cpu::testkit::flush();
        let mut handle = lock.auto_handle();
        assert_eq!(handle.cpu(), 0);
        let mut value = 0usize;
        for i in 0..3 * crate::cpu::RECHECK_PERIOD {
            if i == 5 {
                // Simulated migration mid-run; the handle must keep
                // working through the stale leaf and re-home at the
                // next periodic re-check.
                crate::cpu::testkit::set_override(Some(7));
            }
            handle.acquire();
            value += 1;
            handle.release();
        }
        assert_eq!(value, 3 * crate::cpu::RECHECK_PERIOD as usize);
        assert_eq!(handle.cpu(), 7, "placement re-check never observed the migration");
        crate::cpu::testkit::set_override(None);
        crate::cpu::testkit::flush();
    }

    #[test]
    fn auto_handle_holds_handoff_invariants_across_migrations() {
        // Every thread migrates across cohorts mid-run. Mutual exclusion
        // (exact owner-only counter), the context invariant
        // (`debug_ctx_enter` panics in debug builds on a violation) and
        // release-order checks all stay armed while handles re-home.
        const THREADS: usize = 4;
        const ITERS: u32 = 2 * crate::cpu::RECHECK_PERIOD;
        let h = platforms::tiny();
        let lock =
            Arc::new(DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for t in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                crate::cpu::testkit::set_override(Some(t * 2));
                crate::cpu::testkit::flush();
                let mut handle = lock.auto_handle();
                for i in 0..ITERS {
                    if i == ITERS / 2 {
                        // Cross-cohort migration: 0↔7, 2↔5, …
                        crate::cpu::testkit::set_override(Some(7 - t * 2));
                    }
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
                crate::cpu::testkit::set_override(None);
                crate::cpu::testkit::flush();
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS as usize);
    }

    fn hammer(lock: &Arc<DynClofLock>, cpus: &[usize], iters: usize) -> usize {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for &cpu in cpus {
            let lock = Arc::clone(lock);
            let counter = Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                for _ in 0..iters {
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn build_checks_level_count() {
        let h = platforms::tiny();
        let err = DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Ticket]).unwrap_err();
        assert!(matches!(err, ClofError::LevelCountMismatch { .. }));
    }

    #[test]
    fn build_rejects_unfair_by_default() {
        let h = platforms::tiny();
        let err =
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Ttas, LockKind::Ticket]).unwrap_err();
        assert!(matches!(
            err,
            ClofError::UnfairComponent {
                kind: LockKind::Ttas,
                level: 1
            }
        ));
        // ... but allows it when asked (the lock-cohorting C-BO-MCS case).
        let lock = DynClofLock::build_with(
            &h,
            &[LockKind::Mcs, LockKind::Ttas, LockKind::Ticket],
            ClofParams::default(),
            true,
        )
        .unwrap();
        assert!(!lock.is_fair());
    }

    #[test]
    fn name_follows_paper_notation() {
        let h = platforms::tiny();
        let lock =
            DynClofLock::build(&h, &[LockKind::Hemlock, LockKind::Mcs, LockKind::Clh]).unwrap();
        assert_eq!(lock.name(), "hem-mcs-clh");
        assert_eq!(lock.leaf_count(), 4);
    }

    #[test]
    fn mutual_exclusion_all_cpus_tiny() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
        );
        let cpus: Vec<usize> = (0..8).collect();
        assert_eq!(hammer(&lock, &cpus, 1000), 8000);
    }

    #[test]
    fn mutual_exclusion_every_homogeneous_composition() {
        let h = platforms::tiny();
        for kind in [
            LockKind::Ticket,
            LockKind::Mcs,
            LockKind::Clh,
            LockKind::Hemlock,
            LockKind::HemlockCtr,
        ] {
            let lock = Arc::new(DynClofLock::build(&h, &[kind, kind, kind]).unwrap());
            let cpus = [0usize, 3, 4, 7];
            assert_eq!(hammer(&lock, &cpus, 500), 2000, "{kind:?}");
        }
    }

    #[test]
    fn mutual_exclusion_4level_on_paper_armv8() {
        // Full Armv8 hierarchy; threads on a spread of CPUs.
        let h = platforms::paper_armv8_4level();
        let lock = Arc::new(
            DynClofLock::build(
                &h,
                &[
                    LockKind::Ticket,
                    LockKind::Clh,
                    LockKind::Ticket,
                    LockKind::Ticket,
                ],
            )
            .unwrap(),
        );
        assert_eq!(lock.name(), "tkt-clh-tkt-tkt");
        let cpus = [0usize, 1, 4, 33, 64, 127];
        assert_eq!(hammer(&lock, &cpus, 400), 2400);
    }

    #[test]
    fn two_threads_same_cpu_share_leaf() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Mcs, LockKind::Mcs]).unwrap(),
        );
        assert_eq!(hammer(&lock, &[2, 2], 1000), 2000);
    }

    #[test]
    fn keep_local_threshold_one_still_live() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build_with(
                &h,
                &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
                ClofParams {
                    keep_local_threshold: 1,
                },
                false,
            )
            .unwrap(),
        );
        assert_eq!(hammer(&lock, &[0, 1, 6, 7], 500), 2000);
    }

    #[test]
    fn stats_capture_locality() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
        );
        // Force a same-cohort waiter to exist at release time (on a
        // single-CPU host free-running threads rarely overlap): hold the
        // lock from CPU 0 while CPU 1 (same leaf cohort) queues up.
        let mut holder = lock.handle(0);
        holder.acquire();
        let started = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let waiter = {
            let lock = Arc::clone(&lock);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut handle = lock.handle(1);
                started.store(1, std::sync::atomic::Ordering::Release);
                handle.acquire();
                handle.release();
            })
        };
        while started.load(std::sync::atomic::Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        holder.release(); // waiter is queued at the leaf ⇒ local pass
        waiter.join().unwrap();

        let stats = lock.stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].acquisitions, 2);
        assert_eq!(stats[0].passes, 1, "{stats:?}");
        // The root was acquired once (by the holder) and inherited by
        // the waiter.
        assert_eq!(stats[2].acquisitions, 1);
        assert!(stats[0].locality() > 0.0);
    }

    #[test]
    fn stats_zero_on_fresh_lock() {
        let h = platforms::tiny();
        let lock =
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Mcs, LockKind::Mcs]).unwrap();
        for level in lock.stats() {
            assert_eq!(level.acquisitions, 0);
            assert_eq!(level.locality(), 0.0);
        }
    }

    #[test]
    fn per_level_params_apply() {
        use crate::level::ClofParams;
        let h = platforms::tiny();
        let params = [
            ClofParams { keep_local_threshold: 2 },
            ClofParams { keep_local_threshold: 64 },
            ClofParams { keep_local_threshold: 1 },
        ];
        let lock = Arc::new(
            DynClofLock::build_with_level_params(
                &h,
                &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
                &params,
                false,
            )
            .unwrap(),
        );
        assert_eq!(hammer(&lock, &[0, 1, 4, 5], 500), 2000);
        // Arity mismatch is rejected.
        let err = DynClofLock::build_with_level_params(
            &h,
            &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
            &params[..2],
            false,
        );
        assert!(err.is_err());
    }

    /// Queues a waiter on CPU 1 while CPU 0 holds, and reports the leaf
    /// cohort's read-indicator count observed during the wait.
    fn waiter_count_while_queued(lock: &Arc<DynClofLock>) -> u32 {
        let mut holder = lock.handle(0);
        holder.acquire();
        let started = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let lock = Arc::clone(lock);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut handle = lock.handle(1);
                started.store(1, Ordering::Release);
                handle.acquire();
                handle.release();
            })
        };
        while started.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        // Grace period: the waiter is parked in the leaf's low-lock
        // acquire (CPUs 0 and 1 share the leaf cohort on `tiny`).
        std::thread::sleep(std::time::Duration::from_millis(50));
        let count = lock.leaves[lock.cpu_to_leaf[0]].meta.waiter_count();
        holder.release();
        waiter.join().unwrap();
        count
    }

    #[test]
    fn hinting_low_lock_skips_read_indicator() {
        // Regression: a low lock with a native waiter hint (tkt) must
        // not maintain the read-indicator counter at all — the release
        // path always takes the hint branch, so `inc`/`dec_waiters`
        // would be pure wasted coherence traffic.
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket])
                .unwrap(),
        );
        assert_eq!(waiter_count_while_queued(&lock), 0);
    }

    #[test]
    fn hintless_low_lock_maintains_read_indicator() {
        // Counterpart: TTAS answers no hint, so the counter path must
        // still run and see the queued waiter.
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build_with(
                &h,
                &[LockKind::Ttas, LockKind::Ticket, LockKind::Ticket],
                ClofParams::default(),
                true,
            )
            .unwrap(),
        );
        assert_eq!(waiter_count_while_queued(&lock), 1);
    }

    #[test]
    fn flat_hierarchy_is_just_the_basic_lock() {
        let h = clof_topology::Hierarchy::flat(4).unwrap();
        let lock = Arc::new(DynClofLock::build(&h, &[LockKind::Clh]).unwrap());
        assert_eq!(lock.name(), "clh");
        assert_eq!(hammer(&lock, &[0, 1, 2, 3], 1000), 4000);
    }

    #[test]
    fn finalist_compositions_get_monomorphized_dispatch() {
        let h3 = platforms::tiny();
        for kinds in [
            [LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
            [LockKind::Clh, LockKind::Clh, LockKind::Ticket],
            [LockKind::Clh, LockKind::Clh, LockKind::Hemlock],
            [LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
        ] {
            let lock = DynClofLock::build(&h3, &kinds).unwrap();
            assert_eq!(
                lock.dispatch_tier(),
                DispatchTier::Monomorphized,
                "{}",
                lock.name()
            );
        }
        let h2 = clof_topology::platforms::two_level(8, 2);
        for kinds in [
            [LockKind::Ticket, LockKind::Ticket],
            [LockKind::Mcs, LockKind::Ticket],
            [LockKind::Clh, LockKind::Ticket],
        ] {
            let lock = DynClofLock::build(&h2, &kinds).unwrap();
            assert_eq!(
                lock.dispatch_tier(),
                DispatchTier::Monomorphized,
                "{}",
                lock.name()
            );
        }
        // Non-finalists stay on the generic enum tree.
        for kinds in [
            [LockKind::Hemlock, LockKind::Mcs, LockKind::Clh],
            [LockKind::Ticket, LockKind::Clh, LockKind::Ticket],
        ] {
            let lock = DynClofLock::build(&h3, &kinds).unwrap();
            assert_eq!(lock.dispatch_tier(), DispatchTier::Generic, "{}", lock.name());
        }
        let flat = clof_topology::Hierarchy::flat(4).unwrap();
        let lock = DynClofLock::build(&flat, &[LockKind::Ticket]).unwrap();
        assert_eq!(lock.dispatch_tier(), DispatchTier::Generic);
    }

    #[test]
    fn fast_and_generic_handles_interoperate() {
        // Both tiers run the identical protocol on the same shared
        // nodes, so a mixed population must preserve mutual exclusion
        // and produce the same aggregate stats as a uniform one.
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
        );
        assert_eq!(lock.dispatch_tier(), DispatchTier::Monomorphized);
        const ITERS: usize = 800;
        let counter = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for (i, cpu) in [0usize, 1, 4, 7].into_iter().enumerate() {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let mut handle = if i % 2 == 0 {
                    lock.handle(cpu)
                } else {
                    lock.handle_generic(cpu)
                };
                for _ in 0..ITERS {
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4 * ITERS);
        // Every leaf acquisition is counted exactly once regardless of
        // which tier performed it.
        assert_eq!(lock.stats()[0].acquisitions, 4 * ITERS as u64);
    }

    #[test]
    fn stats_visit_every_node_exactly_once_on_asymmetric_hierarchy() {
        // Regression for the traversal rewrite: the old pointer-dedup
        // walk was quadratic and easy to get wrong on trees where
        // cohort counts differ per branch. Build an asymmetric tree —
        // leaf cohorts of size 3/2/1, mid cohorts of size 2/1 (in leaf
        // cohorts) — and check the per-level aggregates against an
        // exact hand count.
        let h = clof_topology::Hierarchy::from_levels(
            vec![
                ("core".to_string(), vec![0, 0, 0, 1, 1, 2]),
                ("numa".to_string(), vec![0, 0, 0, 0, 0, 1]),
            ],
            6,
        )
        .unwrap();
        assert_eq!(h.level_count(), 3);
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket])
                .unwrap(),
        );
        // One uncontended acquire per CPU: every leaf climbs to the
        // root each time (no waiters anywhere), so per level the
        // acquisition count equals the number of ops and every pass
        // count is zero. A node missed by the traversal would lose its
        // cohort's share; a node visited twice would overshoot.
        for cpu in 0..6 {
            let mut handle = lock.handle(cpu);
            handle.acquire();
            handle.release();
        }
        let stats = lock.stats();
        assert_eq!(stats.len(), 3);
        for level in &stats {
            assert_eq!(level.acquisitions, 6, "{stats:?}");
            assert_eq!(level.passes, 0, "{stats:?}");
            // The root has no level above it to release up to.
            let expected_up = if level.level == 2 { 0 } else { 6 };
            assert_eq!(level.releases_up, expected_up, "{stats:?}");
        }
        // The construction-order list holds exactly one entry per
        // cohort per level: 3 leaves + 2 mids + 1 root.
        assert_eq!(lock.nodes.len(), 6);
        let per_level: Vec<usize> = (0..3)
            .map(|l| lock.nodes.iter().filter(|(level, _)| *level == l).count())
            .collect();
        assert_eq!(per_level, vec![3, 2, 1]);
    }

    #[test]
    fn striped_indicator_keeps_hintless_leaf_visible_per_cpu() {
        // Each CPU in a leaf cohort lands on its own stripe; a waiter
        // parked from any of them must be visible to `has_waiters`.
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build_with(
                &h,
                &[LockKind::Ttas, LockKind::Ticket, LockKind::Ticket],
                ClofParams::default(),
                true,
            )
            .unwrap(),
        );
        // CPUs 0 and 1 share leaf cohort 0 on `tiny` but use distinct
        // stripes; queue a waiter from each in turn.
        for waiter_cpu in [0usize, 1] {
            let mut holder = lock.handle(if waiter_cpu == 0 { 1 } else { 0 });
            holder.acquire();
            let started = Arc::new(AtomicUsize::new(0));
            let waiter = {
                let lock = Arc::clone(&lock);
                let started = Arc::clone(&started);
                std::thread::spawn(move || {
                    let mut handle = lock.handle(waiter_cpu);
                    started.store(1, Ordering::Release);
                    handle.acquire();
                    handle.release();
                })
            };
            while started.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert_eq!(
                lock.leaf_waiter_count(waiter_cpu),
                1,
                "stripe for cpu {waiter_cpu} lost its waiter"
            );
            assert!(lock.leaves[lock.cpu_to_leaf[waiter_cpu]].meta.has_waiters());
            holder.release();
            waiter.join().unwrap();
        }
    }

    /// One contended timeout cycle on `lock`: CPU 0 holds, CPU 1 times
    /// out, then — after the unwind — CPU 1 must win cleanly. Returns
    /// the timed-out attempt's elapsed wall time.
    #[cfg(feature = "deadline")]
    fn timeout_cycle(lock: &Arc<DynClofLock>, generic: bool) -> std::time::Duration {
        use std::time::{Duration, Instant};
        let mk = |cpu: usize| {
            if generic {
                lock.handle_generic(cpu)
            } else {
                lock.handle(cpu)
            }
        };
        let mut holder = mk(0);
        holder.acquire();
        let mut waiter = mk(1);
        let start = Instant::now();
        assert!(
            !waiter.try_acquire_until(start + Duration::from_millis(40)),
            "acquired a lock another handle holds"
        );
        let elapsed = start.elapsed();
        assert_eq!(
            lock.queue_depth_hint(),
            0,
            "timed-out waiter leaked a waiter-count registration"
        );
        holder.release();
        // The abandoned attempt must leave both the tree and the
        // waiter's own contexts reusable.
        assert!(waiter.try_acquire_until(Instant::now() + Duration::from_secs(10)));
        waiter.release();
        elapsed
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn deadline_timeout_unwinds_fast_tier_and_generic() {
        let h = platforms::tiny();
        // (Mcs, Clh, Ticket) is a finalist: `handle` exercises the
        // monomorphized Fast3 path, `handle_generic` the enum walk.
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
        );
        assert!(lock.fast.is_some(), "finalist shape should resolve a fast tier");
        for generic in [false, true] {
            let elapsed = timeout_cycle(&lock, generic);
            // Acceptance bound: d + one hand-off. Uncontended hand-offs
            // are microseconds; 40ms of budget coming back after whole
            // seconds would mean an unbounded wait snuck in.
            assert!(
                elapsed < std::time::Duration::from_secs(5),
                "timeout took {elapsed:?} against a 40ms budget (generic={generic})"
            );
        }
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn deadline_timeout_unwinds_hintless_indicator_levels() {
        // TTAS leaves have no native waiter hint, so the timed-out climb
        // crosses the striped read-indicator bracket — the
        // `queue_depth_hint() == 0` assert inside `timeout_cycle` is the
        // actual leak oracle here.
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build_with(
                &h,
                &[LockKind::Ttas, LockKind::Ticket, LockKind::Ticket],
                ClofParams::default(),
                true,
            )
            .unwrap(),
        );
        timeout_cycle(&lock, false);
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn deadline_uncontended_try_acquire_wins_immediately() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
        );
        let mut handle = lock.handle(0);
        assert!(handle.try_acquire_for(std::time::Duration::from_secs(10)));
        handle.release();
        // And the plain path still works after a try path used the
        // same contexts.
        handle.acquire();
        handle.release();
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn poison_flag_roundtrips() {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
        );
        assert!(!lock.is_poisoned());
        lock.poison();
        assert!(lock.is_poisoned());
        // Poison is advisory at this layer: acquisition still works.
        let mut handle = lock.handle(0);
        handle.acquire();
        handle.release();
        lock.clear_poison();
        assert!(!lock.is_poisoned());
    }
}
