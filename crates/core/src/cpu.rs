//! Where am I running? — thread→CPU resolution for handle placement.
//!
//! CLoF handles enter the composed tree at the leaf cohort of the CPU
//! the calling thread runs on. Resolving that CPU id costs a `getcpu`
//! syscall, far too much to pay on every acquire, so [`cached_cpu`]
//! memoizes the answer in a thread-local and only re-resolves every
//! [`RECHECK_PERIOD`] calls. The periodic re-check is the migration
//! invalidation: a migrated thread keeps using its old leaf for at most
//! one period, then re-homes.
//!
//! A stale placement is a *performance* wrinkle, never a correctness
//! one: CLoF locks are thread-oblivious — any thread may acquire
//! through any leaf and the hand-off invariants hold regardless (the
//! `auto_handle_*` tests in `dynlock` pin this across a simulated
//! migration). The cache therefore needs no synchronization with the
//! scheduler; it converges lazily.

use std::cell::Cell;

use clof_topology::CpuId;

/// Acquires between placement re-checks. Small enough that a migrated
/// thread re-homes within microseconds under load, large enough that
/// the syscall amortizes to noise.
pub const RECHECK_PERIOD: u32 = 64;

thread_local! {
    /// `(raw_cpu, calls_until_recheck)`; the zero countdown makes the
    /// first call resolve for real.
    static CACHED: Cell<(usize, u32)> = const { Cell::new((0, 0)) };
}

/// The CPU this thread runs on right now, folded into `0..ncpus`
/// (oversubscribed or mis-sized hierarchies fold modulo — placement is
/// a hint, and every leaf is a correct entry point).
///
/// Always resolves (syscall on Linux); prefer [`cached_cpu`] on hot
/// paths.
pub fn current_cpu(ncpus: usize) -> CpuId {
    raw_cpu() % ncpus.max(1)
}

/// [`current_cpu`], memoized per thread: returns the cached placement
/// and re-resolves only every [`RECHECK_PERIOD`] calls.
pub fn cached_cpu(ncpus: usize) -> CpuId {
    CACHED.with(|c| {
        let (cpu, left) = c.get();
        let cpu = if left == 0 {
            let fresh = raw_cpu();
            c.set((fresh, RECHECK_PERIOD));
            fresh
        } else {
            c.set((cpu, left - 1));
            cpu
        };
        cpu % ncpus.max(1)
    })
}

fn raw_cpu() -> usize {
    #[cfg(any(test, feature = "testkit"))]
    if let Some(cpu) = testkit::get_override() {
        return cpu;
    }
    imp::raw_cpu()
}

/// Test-only placement control: pin or migrate the *resolved* CPU of
/// the current thread, exercising the cache's re-check path without a
/// real scheduler migration.
#[cfg(any(test, feature = "testkit"))]
pub mod testkit {
    use std::cell::Cell;

    thread_local! {
        static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    }

    /// Pins this thread's resolved raw CPU id (`None` restores real
    /// resolution). Takes effect at the next periodic re-check — call
    /// [`flush`] to force it immediately.
    pub fn set_override(cpu: Option<usize>) {
        OVERRIDE.with(|o| o.set(cpu));
    }

    pub(super) fn get_override() -> Option<usize> {
        OVERRIDE.with(std::cell::Cell::get)
    }

    /// Zeroes this thread's re-check countdown so the next
    /// [`cached_cpu`](super::cached_cpu) call resolves for real.
    pub fn flush() {
        super::CACHED.with(|c| {
            let (cpu, _) = c.get();
            c.set((cpu, 0));
        });
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    /// Raw `getcpu(2)` — no libc dependency, same discipline as the
    /// locks crate's futex shim. The vDSO would be faster still, but
    /// the cache above already amortizes the syscall away.
    pub(super) fn raw_cpu() -> usize {
        let mut cpu: u32 = 0;
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 309isize => ret, // SYS_getcpu
                in("rdi") &mut cpu,
                in("rsi") std::ptr::null_mut::<u32>(),
                in("rdx") std::ptr::null_mut::<u8>(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        #[cfg(target_arch = "aarch64")]
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") 168isize, // SYS_getcpu
                inlateout("x0") (&mut cpu as *mut u32) => ret,
                in("x1") std::ptr::null_mut::<u32>(),
                in("x2") std::ptr::null_mut::<u8>(),
                options(nostack),
            );
        }
        if ret == 0 {
            cpu as usize
        } else {
            0
        }
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod imp {
    /// No portable "current CPU" — derive a stable pseudo-placement
    /// from the thread id so distinct threads still spread across
    /// leaves deterministically.
    pub(super) fn raw_cpu() -> usize {
        use std::hash::{Hash, Hasher};
        // Fixed-seed hasher: the pseudo-placement must be stable across
        // calls from one thread.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_cpu_is_in_range() {
        for _ in 0..100 {
            assert!(current_cpu(3) < 3);
        }
        assert_eq!(current_cpu(1), 0);
        assert_eq!(current_cpu(0), 0, "degenerate ncpus folds to 0");
    }

    #[test]
    fn cache_holds_between_rechecks_and_converges_after() {
        testkit::set_override(Some(2));
        testkit::flush();
        assert_eq!(cached_cpu(8), 2);
        // A migration mid-period is observed late, at the re-check: the
        // resolving call is followed by RECHECK_PERIOD cached calls…
        testkit::set_override(Some(5));
        for _ in 0..RECHECK_PERIOD {
            assert_eq!(cached_cpu(8), 2, "stale placement must persist a full period");
        }
        // …and the next one resolves again.
        assert_eq!(cached_cpu(8), 5);
        testkit::set_override(None);
        testkit::flush();
    }

    #[test]
    fn flush_forces_immediate_recheck() {
        testkit::set_override(Some(1));
        testkit::flush();
        assert_eq!(cached_cpu(8), 1);
        testkit::set_override(Some(6));
        testkit::flush();
        assert_eq!(cached_cpu(8), 6);
        testkit::set_override(None);
        testkit::flush();
    }

    #[test]
    fn real_resolution_stays_in_range() {
        // No override: whatever the platform reports folds into range.
        for n in [1usize, 2, 7, 64] {
            assert!(current_cpu(n) < n);
        }
    }
}
