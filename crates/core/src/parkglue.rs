//! Wires the `clof-locks` park/wake recorder hooks into `clof-obs`
//! (compiled only when both `park` and `obs` are on).
//!
//! The locks crate is dependency-free, so its waiting layer exposes bare
//! function-pointer hooks instead of calling telemetry directly:
//! [`install`] points them at the process-global park counters and
//! histogram in [`clof_obs::park`]. Site attribution rides a
//! thread-local: the composed acquire path publishes its profiler site
//! id before it starts waiting ([`enter_wait`]) and clears it once the
//! lock is held ([`exit_wait`]) — a park can only happen in between, so
//! the parked-duration recorder reads the thread-local to attribute the
//! episode to the right [`ContentionProfile`] site. The wake side stays
//! unattributed (a futex wake cannot know whose waiter it roused).
//!
//! [`ContentionProfile`]: clof_obs::profile::ContentionProfile

use std::cell::Cell;
use std::sync::Once;

use clof_obs::registry::INVALID_SITE;

thread_local! {
    /// The profiler site this thread is currently waiting at
    /// ([`INVALID_SITE`] outside a composed acquire).
    static CURRENT_SITE: Cell<u32> = const { Cell::new(INVALID_SITE) };
}

/// Installs the park/wake recorders (idempotent, first caller wins —
/// called from every telemetry-enabled lock's constructor).
pub(crate) fn install() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        clof_locks::park::set_parked_recorder(Some(on_parked));
        clof_locks::park::set_wake_recorder(Some(on_wake));
    });
}

/// Publishes the site id this thread is about to wait at.
#[inline]
pub(crate) fn enter_wait(site: u32) {
    CURRENT_SITE.with(|s| s.set(site));
}

/// Clears the published site (the acquire completed; any later park
/// would belong to a different site).
#[inline]
pub(crate) fn exit_wait() {
    CURRENT_SITE.with(|s| s.set(INVALID_SITE));
}

fn on_parked(ns: u64) {
    clof_obs::park::record_parked(ns);
    // INVALID_SITE attribution is dropped by the profiler's id guard.
    clof_obs::profile::global().record_park(CURRENT_SITE.with(Cell::get), ns);
}

fn on_wake() {
    clof_obs::park::record_wake();
}
