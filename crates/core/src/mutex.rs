//! A data-holding mutex over a [`DynClofLock`].

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use clof_topology::{CpuId, Hierarchy};

use crate::dynlock::{DynClofLock, DynHandle};
use crate::error::ClofError;
use crate::kind::LockKind;

/// A mutex protecting `T` with a CLoF lock.
///
/// Threads obtain a [`ClofMutexHandle`] for the CPU they run on and lock
/// through it; the handle carries the leaf cohort and the thread's
/// context, so repeated locking allocates nothing.
///
/// # Examples
///
/// ```
/// use clof::{ClofMutex, LockKind};
/// use clof_topology::platforms;
/// use std::sync::Arc;
///
/// let hierarchy = platforms::tiny();
/// let mutex = Arc::new(
///     ClofMutex::new(
///         0u64,
///         &hierarchy,
///         &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
///     )
///     .unwrap(),
/// );
/// let mut handle = mutex.handle(0);
/// *handle.lock() += 1;
/// assert_eq!(*handle.lock(), 1);
/// ```
pub struct ClofMutex<T: ?Sized> {
    lock: Arc<DynClofLock>,
    data: UnsafeCell<T>,
}

// SAFETY: The CLoF lock serializes all access to `data`.
unsafe impl<T: ?Sized + Send> Send for ClofMutex<T> {}
// SAFETY: Shared access only yields references under mutual exclusion.
unsafe impl<T: ?Sized + Send> Sync for ClofMutex<T> {}

impl<T> ClofMutex<T> {
    /// Creates a mutex for `hierarchy` with the given composition.
    ///
    /// # Errors
    ///
    /// Propagates [`DynClofLock::build`] errors.
    pub fn new(value: T, hierarchy: &Hierarchy, locks: &[LockKind]) -> Result<Self, ClofError> {
        Ok(ClofMutex {
            lock: Arc::new(DynClofLock::build(hierarchy, locks)?),
            data: UnsafeCell::new(value),
        })
    }

    /// Creates a mutex around an existing lock (e.g. one produced by the
    /// generator / selector).
    pub fn with_lock(value: T, lock: Arc<DynClofLock>) -> Self {
        ClofMutex {
            lock,
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> ClofMutex<T> {
    /// A handle for a thread running on `cpu`.
    pub fn handle(self: &Arc<Self>, cpu: CpuId) -> ClofMutexHandle<T> {
        ClofMutexHandle {
            mutex: Arc::clone(self),
            inner: self.lock.handle(cpu),
        }
    }

    /// The underlying CLoF lock.
    pub fn raw(&self) -> &Arc<DynClofLock> {
        &self.lock
    }

    /// Whether a holder panicked while holding this mutex. Unlike
    /// `std::sync::Mutex`, blocking [`lock`](ClofMutexHandle::lock)
    /// does not surface poison (it cannot fail); the deadline-bounded
    /// entry points do.
    #[cfg(feature = "deadline")]
    pub fn is_poisoned(&self) -> bool {
        self.lock.is_poisoned()
    }

    /// Clears the poison flag after the caller has repaired (or chosen
    /// to trust) the protected state.
    #[cfg(feature = "deadline")]
    pub fn clear_poison(&self) {
        self.lock.clear_poison();
    }
}

impl<T: fmt::Debug> fmt::Debug for ClofMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClofMutex")
            .field("lock", &self.lock.name())
            .finish_non_exhaustive()
    }
}

/// Per-thread handle on a [`ClofMutex`].
pub struct ClofMutexHandle<T: ?Sized> {
    mutex: Arc<ClofMutex<T>>,
    inner: DynHandle,
}

impl<T: ?Sized> ClofMutexHandle<T> {
    /// Locks the mutex, returning a guard for the data.
    pub fn lock(&mut self) -> ClofMutexGuard<'_, T> {
        self.inner.acquire();
        ClofMutexGuard { handle: self }
    }

    /// Deadline-bounded lock.
    ///
    /// # Errors
    ///
    /// [`ClofError::Timeout`] if the lock was not acquired by
    /// `deadline` (the attempt is fully unwound — the handle is
    /// immediately reusable), and [`ClofError::Poisoned`] if a holder
    /// panicked while holding the mutex. Poison is checked before
    /// spending the budget (cheap early exit) and re-checked after
    /// winning: a panic that lands between the pre-check and our
    /// acquisition must not hand out a guard to suspect data.
    #[cfg(feature = "deadline")]
    pub fn try_lock_until(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<ClofMutexGuard<'_, T>, ClofError> {
        if self.mutex.lock.is_poisoned() {
            return Err(ClofError::Poisoned);
        }
        if !self.inner.try_acquire_until(deadline) {
            return Err(ClofError::Timeout);
        }
        if self.mutex.lock.is_poisoned() {
            self.inner.release();
            return Err(ClofError::Poisoned);
        }
        Ok(ClofMutexGuard { handle: self })
    }

    /// [`try_lock_until`](Self::try_lock_until) with a relative budget
    /// measured from now.
    ///
    /// # Errors
    ///
    /// As [`try_lock_until`](Self::try_lock_until).
    #[cfg(feature = "deadline")]
    pub fn try_lock_for(
        &mut self,
        budget: std::time::Duration,
    ) -> Result<ClofMutexGuard<'_, T>, ClofError> {
        self.try_lock_until(std::time::Instant::now() + budget)
    }
}

/// RAII guard; releases on drop.
pub struct ClofMutexGuard<'a, T: ?Sized> {
    handle: &'a mut ClofMutexHandle<T>,
}

impl<T: ?Sized> Deref for ClofMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: The guard proves the CLoF lock is held.
        unsafe { &*self.handle.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for ClofMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: As in `deref`.
        unsafe { &mut *self.handle.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for ClofMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Panic-while-holding: the protected data may be mid-mutation.
        // Poison first (so the flag is ordered before the release edge
        // the next acquirer synchronizes on), then release anyway —
        // waiters must observe `Poisoned`, not hang on a dead holder.
        #[cfg(feature = "deadline")]
        if std::thread::panicking() {
            self.handle.mutex.lock.poison();
        }
        self.handle.inner.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;

    #[test]
    fn counter_across_cohorts() {
        let h = platforms::tiny();
        let mutex = Arc::new(
            ClofMutex::new(0usize, &h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket])
                .unwrap(),
        );
        let mut threads = Vec::new();
        for cpu in 0..8 {
            let mut handle = mutex.handle(cpu);
            threads.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *handle.lock() += 1;
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let mut handle = mutex.handle(0);
        assert_eq!(*handle.lock(), 8000);
    }

    #[test]
    fn guard_provides_mut_access() {
        let h = platforms::tiny();
        let mutex = Arc::new(
            ClofMutex::new(
                Vec::<u32>::new(),
                &h,
                &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
            )
            .unwrap(),
        );
        let mut handle = mutex.handle(3);
        handle.lock().push(7);
        assert_eq!(handle.lock().as_slice(), &[7]);
    }

    #[test]
    fn with_lock_and_raw_roundtrip() {
        let h = platforms::tiny();
        let lock =
            Arc::new(DynClofLock::build(&h, &[LockKind::Clh, LockKind::Clh, LockKind::Clh]).unwrap());
        let mutex = Arc::new(ClofMutex::with_lock(1u8, Arc::clone(&lock)));
        assert_eq!(mutex.raw().name(), "clh-clh-clh");
        let mut handle = mutex.handle(0);
        assert_eq!(*handle.lock(), 1);
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn try_lock_times_out_under_contention_then_recovers() {
        use std::time::{Duration, Instant};
        let h = platforms::tiny();
        let mutex = Arc::new(
            ClofMutex::new(0u32, &h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
        );
        let mut holder = mutex.handle(0);
        let guard = holder.lock();
        let mut waiter = mutex.handle(2);
        let start = Instant::now();
        assert!(matches!(
            waiter.try_lock_until(start + Duration::from_millis(40)),
            Err(ClofError::Timeout)
        ));
        assert!(start.elapsed() < Duration::from_secs(5));
        drop(guard);
        *waiter
            .try_lock_for(Duration::from_secs(10))
            .expect("uncontended after release") += 1;
        assert_eq!(*waiter.lock(), 1);
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn panic_while_holding_poisons_then_clear_recovers() {
        use std::time::Duration;
        let h = platforms::tiny();
        let mutex = Arc::new(
            ClofMutex::new(vec![1u8], &h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket])
                .unwrap(),
        );
        let panicker = {
            let mutex = Arc::clone(&mutex);
            std::thread::spawn(move || {
                let mut handle = mutex.handle(1);
                let mut guard = handle.lock();
                guard.clear();
                panic!("die while holding");
            })
        };
        assert!(panicker.join().is_err());
        assert!(mutex.is_poisoned());
        // Waiters get `Poisoned`, not a hang and not a guard — on both
        // the early check and (that failing takes priority) a fresh
        // handle's first attempt.
        let mut handle = mutex.handle(3);
        assert!(matches!(
            handle.try_lock_for(Duration::from_secs(10)),
            Err(ClofError::Poisoned)
        ));
        // `clear_poison` is the recovery path: the caller inspects or
        // repairs the data, then proceeds.
        mutex.clear_poison();
        let mut guard = handle
            .try_lock_for(Duration::from_secs(10))
            .expect("cleared poison unlocks the mutex");
        guard.push(2);
        assert_eq!(guard.as_slice(), &[2]);
    }

    #[test]
    fn debug_format_names_composition() {
        let h = platforms::tiny();
        let mutex =
            ClofMutex::new((), &h, &[LockKind::Mcs, LockKind::Mcs, LockKind::Mcs]).unwrap();
        let s = format!("{mutex:?}");
        assert!(s.contains("mcs-mcs-mcs"));
    }
}
