//! Runtime lock-kind descriptors and enum-dispatched basic locks.

use clof_locks::{
    AndersonContext, AndersonLock, BackoffLock, ClhContext, ClhLock, HemContext, Hemlock,
    HemlockCtr, LockInfo, McsContext, McsLock, NoContext, RawLock, TicketLock, TtasLock,
};

use crate::error::ClofError;

/// The basic-lock algorithms known to the generator.
///
/// `Hemlock` vs `HemlockCtr` mirrors the paper's per-architecture choice:
/// "hem on x86 denotes Hemlock with CTR enabled, whereas hem on Armv8
/// denotes Hemlock with CTR disabled" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockKind {
    /// [`TicketLock`].
    Ticket,
    /// [`McsLock`].
    Mcs,
    /// [`ClhLock`].
    Clh,
    /// [`Hemlock`] (CTR disabled).
    Hemlock,
    /// [`HemlockCtr`] (CTR enabled; x86-appropriate).
    HemlockCtr,
    /// [`AndersonLock`] (array-based queue lock).
    Anderson,
    /// [`TtasLock`] (unfair).
    Ttas,
    /// [`BackoffLock`] (unfair).
    Backoff,
}

impl LockKind {
    /// Every kind, fair first.
    pub const ALL: [LockKind; 8] = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Hemlock,
        LockKind::HemlockCtr,
        LockKind::Anderson,
        LockKind::Ttas,
        LockKind::Backoff,
    ];

    /// The paper's basic-lock set for Armv8 (§5.2): tkt, mcs, clh, hem
    /// (CTR disabled — it livelocks on LL/SC machines).
    pub const PAPER_ARM: [LockKind; 4] = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Hemlock,
    ];

    /// The paper's basic-lock set for x86 (§5.2): tkt, mcs, clh, hem
    /// (CTR enabled).
    pub const PAPER_X86: [LockKind; 4] = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::HemlockCtr,
    ];

    /// Capability metadata of this kind.
    pub fn info(self) -> LockInfo {
        match self {
            LockKind::Ticket => TicketLock::INFO,
            LockKind::Mcs => McsLock::INFO,
            LockKind::Clh => ClhLock::INFO,
            LockKind::Hemlock => Hemlock::INFO,
            LockKind::HemlockCtr => HemlockCtr::INFO,
            LockKind::Anderson => AndersonLock::INFO,
            LockKind::Ttas => TtasLock::INFO,
            LockKind::Backoff => BackoffLock::INFO,
        }
    }

    /// Whether the algorithm is starvation-free.
    pub fn is_fair(self) -> bool {
        self.info().fair
    }

    /// Parses the paper's short names (`tkt`, `mcs`, `clh`, `hem`,
    /// `hem-ctr`, `ttas`, `bo`).
    pub fn parse(name: &str) -> Result<Self, ClofError> {
        LockKind::ALL
            .into_iter()
            .find(|k| k.info().name == name)
            .ok_or_else(|| ClofError::UnknownLock {
                name: name.to_string(),
            })
    }
}

/// A basic lock dispatched by enum `match` — the runtime counterpart of
/// the static generics, used by [`DynClofLock`](crate::DynClofLock) to
/// assemble any of the `N^M` generated compositions without `N^M`
/// monomorphizations. As in the paper's C implementation, there are no
/// virtual function pointers on the hot path.
#[derive(Debug)]
pub enum AnyLock {
    /// Ticketlock instance.
    Ticket(TicketLock),
    /// MCS instance.
    Mcs(McsLock),
    /// CLH instance.
    Clh(ClhLock),
    /// Hemlock instance.
    Hemlock(Hemlock),
    /// Hemlock-CTR instance.
    HemlockCtr(HemlockCtr),
    /// Anderson array-lock instance.
    Anderson(AndersonLock),
    /// TTAS instance.
    Ttas(TtasLock),
    /// Backoff-lock instance.
    Backoff(BackoffLock),
}

/// Context matching an [`AnyLock`] variant.
#[derive(Debug)]
pub enum AnyContext {
    /// For context-free locks (tkt/ttas/bo).
    None(NoContext),
    /// MCS queue node.
    Mcs(McsContext),
    /// CLH node pair.
    Clh(ClhContext),
    /// Hemlock grant cell.
    Hem(HemContext),
    /// Anderson slot index.
    Anderson(AndersonContext),
}

/// Compile-time downcast from the enum-dispatched lock and context to a
/// concrete [`RawLock`] type — the glue the monomorphized fast-dispatch
/// tier (`dynlock`) uses to re-type an already-built enum node tree so
/// the finalist compositions run without per-op `match`es.
pub(crate) trait TypedLock: RawLock {
    /// The concrete lock inside `any`, if the variant matches.
    fn from_any(any: &AnyLock) -> Option<&Self>;

    /// The concrete context inside `any`, if the variant matches.
    fn ctx_from_any(any: &mut AnyContext) -> Option<&mut Self::Context>;
}

macro_rules! typed_lock {
    ($ty:ty, $lockvar:ident, $ctxvar:ident) => {
        impl TypedLock for $ty {
            #[inline]
            fn from_any(any: &AnyLock) -> Option<&Self> {
                match any {
                    AnyLock::$lockvar(lock) => Some(lock),
                    _ => None,
                }
            }

            #[inline]
            fn ctx_from_any(any: &mut AnyContext) -> Option<&mut Self::Context> {
                match any {
                    AnyContext::$ctxvar(ctx) => Some(ctx),
                    _ => None,
                }
            }
        }
    };
}

typed_lock!(TicketLock, Ticket, None);
typed_lock!(TtasLock, Ttas, None);
typed_lock!(BackoffLock, Backoff, None);
typed_lock!(McsLock, Mcs, Mcs);
typed_lock!(ClhLock, Clh, Clh);
typed_lock!(Hemlock, Hemlock, Hem);
typed_lock!(HemlockCtr, HemlockCtr, Hem);
typed_lock!(AndersonLock, Anderson, Anderson);

macro_rules! dispatch {
    ($self:expr, $ctx:expr, $lock:ident, $c:ident => $body:expr) => {
        match ($self, $ctx) {
            (AnyLock::Ticket($lock), AnyContext::None($c)) => $body,
            (AnyLock::Ttas($lock), AnyContext::None($c)) => $body,
            (AnyLock::Backoff($lock), AnyContext::None($c)) => $body,
            (AnyLock::Mcs($lock), AnyContext::Mcs($c)) => $body,
            (AnyLock::Clh($lock), AnyContext::Clh($c)) => $body,
            (AnyLock::Hemlock($lock), AnyContext::Hem($c)) => $body,
            (AnyLock::HemlockCtr($lock), AnyContext::Hem($c)) => $body,
            (AnyLock::Anderson($lock), AnyContext::Anderson($c)) => $body,
            _ => unreachable!("context kind does not match lock kind"),
        }
    };
}

impl AnyLock {
    /// Instantiates an unlocked lock of `kind`.
    pub fn new(kind: LockKind) -> Self {
        match kind {
            LockKind::Ticket => AnyLock::Ticket(TicketLock::default()),
            LockKind::Mcs => AnyLock::Mcs(McsLock::default()),
            LockKind::Clh => AnyLock::Clh(ClhLock::default()),
            LockKind::Hemlock => AnyLock::Hemlock(Hemlock::default()),
            LockKind::HemlockCtr => AnyLock::HemlockCtr(HemlockCtr::default()),
            LockKind::Anderson => AnyLock::Anderson(AndersonLock::default()),
            LockKind::Ttas => AnyLock::Ttas(TtasLock::default()),
            LockKind::Backoff => AnyLock::Backoff(BackoffLock::default()),
        }
    }

    /// The kind of this instance.
    pub fn kind(&self) -> LockKind {
        match self {
            AnyLock::Ticket(_) => LockKind::Ticket,
            AnyLock::Mcs(_) => LockKind::Mcs,
            AnyLock::Clh(_) => LockKind::Clh,
            AnyLock::Hemlock(_) => LockKind::Hemlock,
            AnyLock::HemlockCtr(_) => LockKind::HemlockCtr,
            AnyLock::Anderson(_) => LockKind::Anderson,
            AnyLock::Ttas(_) => LockKind::Ttas,
            AnyLock::Backoff(_) => LockKind::Backoff,
        }
    }

    /// Creates a context suitable for this lock.
    pub fn new_context(&self) -> AnyContext {
        match self {
            AnyLock::Ticket(_) | AnyLock::Ttas(_) | AnyLock::Backoff(_) => {
                AnyContext::None(NoContext)
            }
            AnyLock::Mcs(_) => AnyContext::Mcs(McsContext::default()),
            AnyLock::Anderson(_) => AnyContext::Anderson(AndersonContext::default()),
            AnyLock::Clh(_) => AnyContext::Clh(ClhContext::default()),
            AnyLock::Hemlock(_) | AnyLock::HemlockCtr(_) => AnyContext::Hem(HemContext::default()),
        }
    }

    /// Acquires through the matching context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` was not created for this lock's kind.
    #[inline]
    pub fn acquire(&self, ctx: &mut AnyContext) {
        dispatch!(self, ctx, lock, c => lock.acquire(c));
    }

    /// Acquires with a bounded spin budget (spin-then-park); see
    /// [`RawLock::acquire_budgeted`]. Kinds without a parking path
    /// (Hemlock) ignore the budget and spin.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` was not created for this lock's kind.
    #[cfg(feature = "park")]
    #[inline]
    pub fn acquire_budgeted(&self, ctx: &mut AnyContext, budget: u32) {
        dispatch!(self, ctx, lock, c => lock.acquire_budgeted(c, budget));
    }

    /// Attempts to acquire, giving up cleanly once `deadline` passes;
    /// see [`RawLock::try_acquire_until`]. Returns `true` on acquire
    /// (including a grant racing the clock at the deadline edge) and
    /// `false` on timeout, after which the context is clean and no
    /// queue position is left live.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` was not created for this lock's kind.
    #[cfg(feature = "deadline")]
    #[inline]
    pub fn try_acquire_until(&self, ctx: &mut AnyContext, deadline: std::time::Instant) -> bool {
        dispatch!(self, ctx, lock, c => lock.try_acquire_until(c, deadline))
    }

    /// Releases through the matching context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` was not created for this lock's kind.
    #[inline]
    pub fn release(&self, ctx: &mut AnyContext) {
        dispatch!(self, ctx, lock, c => lock.release(c));
    }

    /// Native waiter hint, if the algorithm provides one.
    #[inline]
    pub fn has_waiters_hint(&self, ctx: &AnyContext) -> Option<bool> {
        match (self, ctx) {
            (AnyLock::Ticket(lock), AnyContext::None(c)) => lock.has_waiters_hint(c),
            (AnyLock::Ttas(lock), AnyContext::None(c)) => lock.has_waiters_hint(c),
            (AnyLock::Backoff(lock), AnyContext::None(c)) => lock.has_waiters_hint(c),
            (AnyLock::Mcs(lock), AnyContext::Mcs(c)) => lock.has_waiters_hint(c),
            (AnyLock::Clh(lock), AnyContext::Clh(c)) => lock.has_waiters_hint(c),
            (AnyLock::Hemlock(lock), AnyContext::Hem(c)) => lock.has_waiters_hint(c),
            (AnyLock::HemlockCtr(lock), AnyContext::Hem(c)) => lock.has_waiters_hint(c),
            (AnyLock::Anderson(lock), AnyContext::Anderson(c)) => lock.has_waiters_hint(c),
            _ => unreachable!("context kind does not match lock kind"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_all_kinds() {
        for kind in LockKind::ALL {
            assert_eq!(LockKind::parse(kind.info().name).unwrap(), kind);
        }
        assert!(LockKind::parse("nope").is_err());
    }

    #[test]
    fn paper_sets_are_fair() {
        assert!(LockKind::PAPER_ARM.iter().all(|k| k.is_fair()));
        assert!(LockKind::PAPER_X86.iter().all(|k| k.is_fair()));
    }

    #[test]
    fn any_lock_roundtrip_every_kind() {
        for kind in LockKind::ALL {
            let lock = AnyLock::new(kind);
            assert_eq!(lock.kind(), kind);
            let mut ctx = lock.new_context();
            for _ in 0..10 {
                lock.acquire(&mut ctx);
                lock.release(&mut ctx);
            }
        }
    }

    #[test]
    fn hint_present_for_queue_and_ticket_locks() {
        for kind in [
            LockKind::Ticket,
            LockKind::Mcs,
            LockKind::Clh,
            LockKind::Hemlock,
        ] {
            let lock = AnyLock::new(kind);
            let mut ctx = lock.new_context();
            lock.acquire(&mut ctx);
            assert_eq!(lock.has_waiters_hint(&ctx), Some(false), "{kind:?}");
            lock.release(&mut ctx);
        }
        let lock = AnyLock::new(LockKind::Ttas);
        let ctx = lock.new_context();
        assert_eq!(lock.has_waiters_hint(&ctx), None);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_context_panics() {
        let lock = AnyLock::new(LockKind::Mcs);
        let other = AnyLock::new(LockKind::Clh);
        let mut wrong = other.new_context();
        lock.acquire(&mut wrong);
    }

    #[test]
    fn contention_through_enum_dispatch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let lock = Arc::new(AnyLock::new(LockKind::Mcs));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = lock.new_context();
                for _ in 0..1000 {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }
}
