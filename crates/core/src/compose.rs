//! Static (compile-time) composition: the paper's *syntactic recursion*.
//!
//! `CLoF(l, L)` from the paper's grammar is the generic type
//! [`Clof<L, H>`]: `L` is the low (basic) lock of this level and `H` is
//! the high lock — either another `Clof` or a [`Leaf`] basic lock. The
//! recursion unfolds during monomorphization, so a composed acquire is a
//! chain of inlined calls with no virtual dispatch, mirroring the paper's
//! C-macro unfolding of `lockgen` (Figure 8).

use std::sync::Arc;
#[cfg(feature = "park")]
use std::sync::atomic::{AtomicU32, Ordering};

use clof_locks::RawLock;
use clof_topology::Hierarchy;

use crate::error::ClofError;
use crate::level::{ClofParams, LevelMeta};

/// Telemetry plumbing for the static composition, paired exactly like
/// `dynlock::nodeobs`: with the `obs` feature off every type here is
/// zero-sized and every method an empty `#[inline]` body, so call sites
/// carry no `cfg` noise and the default build carries no symbols.
///
/// The static side records counters and trace spans; latency histograms
/// and the pass-event ring stay dynamic-only (monomorphized nodes have
/// no lock-wide collector to hang them on).
#[cfg(feature = "obs")]
mod staticobs {
    use std::sync::atomic::{AtomicU64, Ordering};

    use clof_obs::trace::{self, SpanKind};
    use clof_obs::{now_ns, thread_tag, watchdog, LevelCounters};

    /// Per-node recording state: counters plus the tracer's level/node
    /// identity and the hand-off flow cell.
    #[derive(Debug)]
    pub struct NodeObs {
        /// Hierarchy level; 0 until the builder tags it via
        /// [`set_level`](Self::set_level) (type recursion alone cannot
        /// know its distance from the root).
        level: u8,
        /// Process-unique cohort tag ([`trace::node_tag`]).
        node: u32,
        /// Flow id parked by a pass for its inheritor; travels through
        /// the low lock's release→acquire edge like the pass flag.
        flow: AtomicU64,
        pub(super) counters: LevelCounters,
    }

    impl Default for NodeObs {
        fn default() -> Self {
            NodeObs {
                level: 0,
                node: trace::node_tag(),
                flow: AtomicU64::new(0),
                counters: LevelCounters::new(),
            }
        }
    }

    impl NodeObs {
        pub(super) fn set_level(&mut self, level: usize) {
            self.level = level as u8;
        }

        /// Timestamp taken before the low-lock acquire; 0 when tracing
        /// is off (the static side has no latency histogram to feed).
        #[inline]
        pub(super) fn start(&self) -> u64 {
            if trace::is_enabled() {
                now_ns()
            } else {
                0
            }
        }

        #[inline]
        pub(super) fn record_acquire(&self, inherited: bool, start: u64) {
            self.counters.record_acquire(inherited);
            if trace::is_enabled() && start != 0 {
                let flow_in = if inherited {
                    self.flow.swap(0, Ordering::Relaxed)
                } else {
                    0
                };
                trace::record(
                    start,
                    now_ns(),
                    self.level,
                    self.node,
                    SpanKind::Wait { inherited },
                    flow_in,
                    0,
                );
            }
        }

        #[inline]
        pub(super) fn record_pass(&self) {
            self.counters.record_pass_taken();
            if trace::is_enabled() {
                let at = now_ns();
                let flow = trace::next_flow_id();
                self.flow.store(flow, Ordering::Relaxed);
                trace::record(at, at, self.level, self.node, SpanKind::Pass, 0, flow);
            }
        }

        #[inline]
        pub(super) fn record_release_up(&self, forced: bool) {
            self.counters.record_pass_declined(forced);
            if trace::is_enabled() {
                let at = now_ns();
                trace::record(
                    at,
                    at,
                    self.level,
                    self.node,
                    SpanKind::ReleaseUp { forced },
                    0,
                    0,
                );
            }
        }

        #[inline]
        pub(super) fn record_hint_hit(&self) {
            self.counters.record_hint_hit();
        }
    }

    /// Whole-lock hold span + watchdog progress, carried per handle.
    #[derive(Debug, Default)]
    pub struct HoldSpan {
        acquired_at: u64,
    }

    impl HoldSpan {
        #[inline]
        pub(super) fn waiting(&mut self) {
            watchdog::note_wait(thread_tag());
        }

        #[inline]
        pub(super) fn acquired(&mut self) {
            watchdog::note_hold(thread_tag());
            self.acquired_at = if trace::is_enabled() { now_ns() } else { 0 };
        }

        #[inline]
        pub(super) fn released(&mut self) {
            if trace::is_enabled() && self.acquired_at != 0 {
                trace::record(self.acquired_at, now_ns(), 0, 0, SpanKind::Hold, 0, 0);
            }
            watchdog::note_idle(thread_tag());
        }

        /// The composed acquire timed out: nothing was acquired, so the
        /// watchdog sees idle (not hold) and the attempt lands in the
        /// process-wide timeout count.
        #[cfg(feature = "deadline")]
        #[inline]
        pub(super) fn wait_abandoned(&mut self) {
            watchdog::note_idle(thread_tag());
            clof_obs::deadline::record_timeout();
        }
    }
}

#[cfg(not(feature = "obs"))]
mod staticobs {
    #[derive(Debug, Default)]
    pub struct NodeObs;

    impl NodeObs {
        #[inline(always)]
        pub(super) fn set_level(&mut self, _level: usize) {}

        #[inline(always)]
        pub(super) fn start(&self) -> u64 {
            0
        }

        #[inline(always)]
        pub(super) fn record_acquire(&self, _inherited: bool, _start: u64) {}

        #[inline(always)]
        pub(super) fn record_pass(&self) {}

        #[inline(always)]
        pub(super) fn record_release_up(&self, _forced: bool) {}

        #[inline(always)]
        pub(super) fn record_hint_hit(&self) {}
    }

    #[derive(Debug, Default)]
    pub struct HoldSpan;

    impl HoldSpan {
        #[inline(always)]
        pub(super) fn waiting(&mut self) {}

        #[inline(always)]
        pub(super) fn acquired(&mut self) {}

        #[inline(always)]
        pub(super) fn released(&mut self) {}

        #[cfg(feature = "deadline")]
        #[inline(always)]
        pub(super) fn wait_abandoned(&mut self) {}
    }
}

/// A node of a composed lock hierarchy.
///
/// Implemented by [`Leaf`] (base case: a basic lock) and [`Clof`]
/// (inductive case). `Context` is the per-thread context for this node's
/// *lowest* level; contexts of higher levels live inside the metadata of
/// the level below them and never surface to the user.
pub trait HierLock: Send + Sync + 'static {
    /// Thread-side context used to acquire this node.
    type Context: Default + Send + Sync + 'static;

    /// Acquires every level from this node up to the system lock (or up
    /// to wherever a passed high lock short-circuits the climb).
    ///
    /// `slot` is the caller's child position under this node (CPU index
    /// within a leaf cohort, or sibling-cohort index for upper levels);
    /// it selects the read-indicator stripe the acquire registers on.
    /// Nodes recursing upward pass their own sibling slot.
    fn acquire(&self, ctx: &mut Self::Context, slot: u32);

    /// Deadline-bounded [`acquire`](Self::acquire): the same climb
    /// under one *absolute* deadline shared by every level. Returns
    /// `false` on timeout with every partially-acquired level unwound —
    /// a timed-out climber holds this node's low lock but never touched
    /// the pass flag, so a plain low release restores exactly the state
    /// the next low-lock winner expects (climb for yourself).
    #[cfg(feature = "deadline")]
    fn try_acquire_until(
        &self,
        ctx: &mut Self::Context,
        slot: u32,
        deadline: std::time::Instant,
    ) -> bool;

    /// Releases this node: passes the high lock within the cohort when
    /// allowed, otherwise releases high levels first, then this level.
    fn release(&self, ctx: &mut Self::Context);

    /// Whether the composition is starvation-free (all components fair).
    fn fair() -> bool;

    /// Composition name in the paper's notation, innermost level first
    /// (e.g. `"tkt-clh-tkt"`).
    fn name() -> String;

    /// Number of levels below (and including) this node.
    fn levels() -> usize;

    /// Visits every node's telemetry counters, bottom-up: the callback
    /// receives `(level, node_address, counters)`. The address lets
    /// callers dedupe shared upper nodes reached from several leaves
    /// (the static side records counters only — histograms and the
    /// event ring need the per-lock plumbing [`crate::DynClofLock`]
    /// has; use the dynamic form for full traces).
    #[cfg(feature = "obs")]
    fn visit_obs(&self, level: usize, visit: &mut dyn FnMut(usize, usize, &clof_obs::LevelCounters));
}

/// Base case of the recursion: a bare basic lock (the system-level lock).
#[derive(Debug)]
pub struct Leaf<L: RawLock> {
    low: L,
    /// Spin rounds before a waiter parks ([`clof_locks::SPIN_FOREVER`]
    /// = never park). The root has no `LevelMeta`, so it carries its own
    /// budget cell.
    #[cfg(feature = "park")]
    budget: AtomicU32,
    obs: staticobs::NodeObs,
}

impl<L: RawLock> Default for Leaf<L> {
    fn default() -> Self {
        Leaf {
            low: L::default(),
            #[cfg(feature = "park")]
            budget: AtomicU32::new(clof_locks::SPIN_FOREVER),
            obs: staticobs::NodeObs::default(),
        }
    }
}

impl<L: RawLock> Leaf<L> {
    /// Wraps a basic lock as the root of a composition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tags this node with its hierarchy level for telemetry (the type
    /// recursion cannot know it; builders do). No-op without `obs`.
    #[must_use]
    pub fn at_level(mut self, level: usize) -> Self {
        self.obs.set_level(level);
        self
    }

    /// Derives this node's spin-then-park budget from the topology span
    /// of its level: the wider the cohort, the sooner waiters park.
    /// No-op without the `park` feature.
    #[must_use]
    pub fn budgeted(self, hierarchy: &Hierarchy, level: usize) -> Self {
        #[cfg(feature = "park")]
        self.budget.store(
            crate::level::spin_budget_for_span(hierarchy.cohort_span(level)),
            Ordering::Relaxed,
        );
        #[cfg(not(feature = "park"))]
        let _ = (hierarchy, level);
        self
    }
}

impl<L: RawLock> HierLock for Leaf<L> {
    type Context = L::Context;

    #[inline]
    fn acquire(&self, ctx: &mut L::Context, _slot: u32) {
        let start = self.obs.start();
        #[cfg(feature = "park")]
        self.low
            .acquire_budgeted(ctx, self.budget.load(Ordering::Relaxed));
        #[cfg(not(feature = "park"))]
        self.low.acquire(ctx);
        self.obs.record_acquire(false, start);
    }

    #[cfg(feature = "deadline")]
    #[inline]
    fn try_acquire_until(
        &self,
        ctx: &mut L::Context,
        _slot: u32,
        deadline: std::time::Instant,
    ) -> bool {
        let start = self.obs.start();
        if !self.low.try_acquire_until(ctx, deadline) {
            return false;
        }
        self.obs.record_acquire(false, start);
        true
    }

    #[inline]
    fn release(&self, ctx: &mut L::Context) {
        self.low.release(ctx);
    }

    fn fair() -> bool {
        L::INFO.fair
    }

    fn name() -> String {
        L::INFO.name.to_string()
    }

    fn levels() -> usize {
        1
    }

    #[cfg(feature = "obs")]
    fn visit_obs(
        &self,
        level: usize,
        visit: &mut dyn FnMut(usize, usize, &clof_obs::LevelCounters),
    ) {
        visit(level, self as *const Self as usize, &self.obs.counters);
    }
}

/// Inductive case: `CLoF(l, L)` — low lock `L`, high lock `H`.
///
/// One `Clof` instance exists **per cohort** of its level; sibling cohorts
/// share the high node through an [`Arc`]. Use [`ClofTree`] to build the
/// full per-machine structure from a [`Hierarchy`].
pub struct Clof<L: RawLock, H: HierLock> {
    low: L,
    meta: LevelMeta<H::Context>,
    high: Arc<H>,
    /// This node's sibling index under its parent — the stripe its
    /// upward acquires register on in the parent's read indicator.
    slot: u32,
    obs: staticobs::NodeObs,
}

impl<L: RawLock, H: HierLock> Clof<L, H> {
    /// Creates a cohort node linked to `high`, with default parameters.
    pub fn new(high: Arc<H>) -> Self {
        Self::with_params(high, ClofParams::default())
    }

    /// Creates a cohort node with explicit parameters (fan-in 1, slot 0).
    pub fn with_params(high: Arc<H>, params: ClofParams) -> Self {
        Self::with_layout(high, params, 1, 0)
    }

    /// Creates a cohort node with explicit parameters and layout: `fanin`
    /// sizes the striped read indicator (children below this node), and
    /// `slot` is this node's sibling index under `high`.
    pub fn with_layout(high: Arc<H>, params: ClofParams, fanin: usize, slot: u32) -> Self {
        Clof {
            low: L::default(),
            meta: LevelMeta::with_fanin(params, fanin),
            high,
            slot,
            obs: staticobs::NodeObs::default(),
        }
    }

    /// Tags this node with its hierarchy level for telemetry (the type
    /// recursion cannot know it; builders do). No-op without `obs`.
    #[must_use]
    pub fn at_level(mut self, level: usize) -> Self {
        self.obs.set_level(level);
        self
    }

    /// Derives this node's spin-then-park budget from the topology span
    /// of its level: the wider the cohort, the sooner waiters park.
    /// No-op without the `park` feature.
    #[must_use]
    pub fn budgeted(self, hierarchy: &Hierarchy, level: usize) -> Self {
        #[cfg(feature = "park")]
        self.meta
            .set_spin_budget(crate::level::spin_budget_for_span(
                hierarchy.cohort_span(level),
            ));
        #[cfg(not(feature = "park"))]
        let _ = (hierarchy, level);
        self
    }

    /// The shared high node.
    pub fn high(&self) -> &Arc<H> {
        &self.high
    }
}

impl<L: RawLock, H: HierLock> HierLock for Clof<L, H> {
    type Context = L::Context;

    /// `lockgen(acq(CLoF(l, L), c))` from Figure 8.
    fn acquire(&self, ctx: &mut L::Context, slot: u32) {
        // Read-indicator bracket; skipped entirely (including the
        // counter) when the basic lock offers a native waiter hint — the
        // paper's optional custom `has_waiters` (§4.1.2). `L::INFO` is a
        // constant, so the branch is resolved at monomorphization time.
        let use_counter = !has_native_hint::<L>();
        let start = self.obs.start();
        if use_counter {
            self.meta.inc_waiters(slot);
        }
        #[cfg(feature = "park")]
        self.low.acquire_budgeted(ctx, self.meta.spin_budget());
        #[cfg(not(feature = "park"))]
        self.low.acquire(ctx);
        if use_counter {
            self.meta.dec_waiters(slot);
        }
        clof_locks::chaos::point("clof-acquire-low-won");
        self.obs.record_acquire(self.meta.has_high_lock(), start);
        if !self.meta.has_high_lock() {
            self.meta.debug_ctx_enter();
            // SAFETY: We own the low lock, so the context invariant grants
            // us exclusive use of the high context; the previous user's
            // writes are visible via the low lock's release→acquire edge.
            let high_ctx = unsafe { self.meta.high_ctx() };
            self.high.acquire(high_ctx, self.slot);
            self.meta.debug_ctx_exit();
        }
    }

    /// Deadline-bounded replica of [`acquire`](HierLock::acquire): the
    /// read-indicator bracket closes on both outcomes (a timed-out
    /// waiter must leave no residue), and a failed climb releases this
    /// level's low lock *plainly* — the pass flag was never touched, so
    /// the successor sees a normal climb-for-yourself hand-off.
    #[cfg(feature = "deadline")]
    fn try_acquire_until(
        &self,
        ctx: &mut L::Context,
        slot: u32,
        deadline: std::time::Instant,
    ) -> bool {
        let use_counter = !has_native_hint::<L>();
        let start = self.obs.start();
        if use_counter {
            self.meta.inc_waiters(slot);
        }
        let won = self.low.try_acquire_until(ctx, deadline);
        if use_counter {
            self.meta.dec_waiters(slot);
        }
        if !won {
            return false;
        }
        clof_locks::chaos::point("clof-acquire-low-won");
        self.obs.record_acquire(self.meta.has_high_lock(), start);
        if !self.meta.has_high_lock() {
            self.meta.debug_ctx_enter();
            // SAFETY: As in `acquire` — we own the low lock.
            let high_ctx = unsafe { self.meta.high_ctx() };
            let climbed = self.high.try_acquire_until(high_ctx, self.slot, deadline);
            self.meta.debug_ctx_exit();
            if !climbed {
                self.low.release(ctx);
                return false;
            }
        }
        true
    }

    /// `lockgen(rel(CLoF(l, L), c))` from Figure 8.
    fn release(&self, ctx: &mut L::Context) {
        let hint = self.low.has_waiters_hint(ctx);
        if hint.is_some() {
            self.obs.record_hint_hit();
        }
        let waiters = hint.unwrap_or_else(|| self.meta.has_waiters());
        if waiters && self.meta.keep_local() {
            // Pass: leave the high lock acquired for our cohort successor.
            self.obs.record_pass();
            self.meta.pass_high_lock();
            clof_locks::chaos::point("clof-release-pass");
            self.low.release(ctx);
        } else {
            // `waiters` here means the decline was forced by the
            // keep_local threshold, not by an empty cohort.
            self.obs.record_release_up(waiters);
            self.meta.clear_high_lock();
            clof_locks::chaos::point("clof-release-up");
            self.meta.debug_ctx_enter();
            // SAFETY: As in `acquire` — we still own the low lock.
            let high_ctx = unsafe { self.meta.high_ctx() };
            // Release order matters (paper §4.1.3): the high lock must be
            // released *before* the low lock, otherwise a successor could
            // acquire the low lock and race us on the high context.
            self.high.release(high_ctx);
            self.meta.debug_ctx_exit();
            self.low.release(ctx);
        }
    }

    fn fair() -> bool {
        L::INFO.fair && H::fair()
    }

    fn name() -> String {
        format!("{}-{}", L::INFO.name, H::name())
    }

    fn levels() -> usize {
        1 + H::levels()
    }

    #[cfg(feature = "obs")]
    fn visit_obs(
        &self,
        level: usize,
        visit: &mut dyn FnMut(usize, usize, &clof_obs::LevelCounters),
    ) {
        visit(level, self as *const Self as usize, &self.obs.counters);
        self.high.visit_obs(level + 1, visit);
    }
}

/// Whether `L` reports waiters natively (compile-time constant per type).
///
/// Reads [`LockInfo::waiter_hint`](clof_locks::LockInfo) directly, so new
/// locks (and locks whose hint was previously missed by a name-keyed
/// list — Anderson always answered `Some` yet used to be treated as
/// hintless here, paying the read-indicator traffic for nothing) are
/// classified by their own declaration. The `native_hint_matches_info`
/// test pins the constant to the run-time behaviour for every kind.
#[inline]
fn has_native_hint<L: RawLock>() -> bool {
    L::INFO.waiter_hint
}

/// A machine-wide tree of composed locks of static type `T`, one leaf node
/// per innermost cohort.
///
/// All threads protecting one critical section use the *same* tree, each
/// entering at the leaf of its CPU's cohort — the paper's requirement
/// that per-thread CLoF locks share the level sequence and the
/// system-level lock (§4.1.1).
pub struct ClofTree<T: HierLock> {
    leaves: Vec<Arc<T>>,
    cpu_to_leaf: Vec<usize>,
    /// Each CPU's index within its leaf cohort — the read-indicator
    /// stripe its handle registers on.
    cpu_to_stripe: Vec<u32>,
    name: String,
}

impl<T: HierLock> ClofTree<T> {
    fn new(leaves: Vec<Arc<T>>, hierarchy: &Hierarchy) -> Self {
        let cpu_to_leaf = (0..hierarchy.ncpus())
            .map(|c| hierarchy.cohort(0, c))
            .collect();
        ClofTree {
            leaves,
            cpu_to_leaf,
            cpu_to_stripe: cpu_stripes(hierarchy),
            name: T::name(),
        }
    }

    /// A per-thread handle entering at `cpu`'s leaf cohort.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the hierarchy the tree was built for.
    pub fn handle(&self, cpu: usize) -> ClofHandle<T> {
        ClofHandle {
            node: Arc::clone(&self.leaves[self.cpu_to_leaf[cpu]]),
            ctx: T::Context::default(),
            stripe: self.cpu_to_stripe[cpu],
            hold: staticobs::HoldSpan::default(),
        }
    }

    /// Composition name (`tkt-clh-tkt` style).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of leaf cohorts.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Telemetry snapshot: per-level counters summed across cohorts
    /// (exact at quiescence).
    ///
    /// The static composition records counters only — latency histograms
    /// and the pass-event ring live on [`crate::DynClofLock`], whose
    /// nodes share per-lock collector state; monomorphized nodes have
    /// nowhere lock-wide to hang it without widening every handle.
    #[cfg(feature = "obs")]
    pub fn obs_snapshot(&self) -> clof_obs::LockSnapshot {
        let mut levels: Vec<clof_obs::LevelSnapshot> = (0..T::levels())
            .map(|level| clof_obs::LevelSnapshot {
                level,
                ..Default::default()
            })
            .collect();
        let mut seen: Vec<usize> = Vec::new();
        for leaf in &self.leaves {
            leaf.visit_obs(0, &mut |level, addr, counters| {
                if !seen.contains(&addr) {
                    seen.push(addr);
                    levels[level].merge(&counters.snapshot(level));
                }
            });
        }
        clof_obs::LockSnapshot {
            name: self.name.clone(),
            levels,
            ..Default::default()
        }
    }
}

/// A per-thread handle on a [`ClofTree`]: the leaf node plus the thread's
/// leaf-level context.
pub struct ClofHandle<T: HierLock> {
    node: Arc<T>,
    ctx: T::Context,
    stripe: u32,
    hold: staticobs::HoldSpan,
}

impl<T: HierLock> ClofHandle<T> {
    /// Acquires the composed lock.
    pub fn acquire(&mut self) {
        self.hold.waiting();
        self.node.acquire(&mut self.ctx, self.stripe);
        self.hold.acquired();
    }

    /// Deadline-bounded acquire: one absolute deadline bounds the whole
    /// climb. Returns `false` on timeout with every partially-acquired
    /// level unwound; the handle is immediately reusable.
    #[cfg(feature = "deadline")]
    pub fn try_acquire_until(&mut self, deadline: std::time::Instant) -> bool {
        self.hold.waiting();
        let won = self.node.try_acquire_until(&mut self.ctx, self.stripe, deadline);
        if won {
            self.hold.acquired();
        } else {
            self.hold.wait_abandoned();
        }
        won
    }

    /// [`try_acquire_until`](Self::try_acquire_until) with a relative
    /// budget measured from now.
    #[cfg(feature = "deadline")]
    pub fn try_acquire_for(&mut self, budget: std::time::Duration) -> bool {
        self.try_acquire_until(std::time::Instant::now() + budget)
    }

    /// Releases the composed lock.
    ///
    /// Must only be called while held through this handle.
    pub fn release(&mut self) {
        self.hold.released();
        self.node.release(&mut self.ctx);
    }
}

fn check_levels(hierarchy: &Hierarchy, expected: usize) -> Result<(), ClofError> {
    if hierarchy.level_count() != expected {
        return Err(ClofError::LevelCountMismatch {
            locks: expected,
            levels: hierarchy.level_count(),
        });
    }
    Ok(())
}

/// Each CPU's index within its leaf cohort — the stripe its handle's
/// `inc`/`dec_waiters` bracket registers on.
pub(crate) fn cpu_stripes(hierarchy: &Hierarchy) -> Vec<u32> {
    let mut out = vec![0u32; hierarchy.ncpus()];
    for cohort in 0..hierarchy.cohort_count(0) {
        for (i, cpu) in hierarchy.cohort_members(0, cohort).into_iter().enumerate() {
            out[cpu] = i as u32;
        }
    }
    out
}

/// `(fanin, slot)` per cohort at `level`: fan-in is how many children
/// feed the node (CPUs at level 0, child cohorts above) and sizes its
/// read-indicator stripes; slot is the cohort's sibling index under its
/// parent — the stripe it registers on when climbing. The outermost
/// level keeps slot 0 (the root is a bare [`Leaf`], no indicator).
pub(crate) fn cohort_layout(hierarchy: &Hierarchy, level: usize) -> Vec<(usize, u32)> {
    let n = hierarchy.cohort_count(level);
    let mut fanin = vec![0usize; n];
    if level == 0 {
        for (cohort, f) in fanin.iter_mut().enumerate() {
            *f = hierarchy.cohort_members(0, cohort).len();
        }
    } else {
        for child in 0..hierarchy.cohort_count(level - 1) {
            let cpu = hierarchy.cohort_members(level - 1, child)[0];
            fanin[hierarchy.cohort(level, cpu)] += 1;
        }
    }
    let mut slot = vec![0u32; n];
    if level + 1 < hierarchy.level_count() {
        let mut next = vec![0u32; hierarchy.cohort_count(level + 1)];
        for (cohort, s) in slot.iter_mut().enumerate() {
            let cpu = hierarchy.cohort_members(level, cohort)[0];
            let parent = hierarchy.cohort(level + 1, cpu);
            *s = next[parent];
            next[parent] += 1;
        }
    }
    fanin.into_iter().zip(slot).collect()
}

/// Builds a 1-level "composition": just the system lock (degenerate case,
/// NUMA-oblivious behaviour).
pub fn build1<L0: RawLock>(hierarchy: &Hierarchy) -> Result<ClofTree<Leaf<L0>>, ClofError> {
    check_levels(hierarchy, 1)?;
    let root = Arc::new(Leaf::<L0>::new().at_level(0).budgeted(hierarchy, 0));
    Ok(ClofTree::new(vec![root], hierarchy))
}

/// Builds a 2-level composition `l0-l1` over a 2-level hierarchy.
pub fn build2<L0: RawLock, L1: RawLock>(
    hierarchy: &Hierarchy,
    params: ClofParams,
) -> Result<ClofTree<Clof<L0, Leaf<L1>>>, ClofError> {
    check_levels(hierarchy, 2)?;
    let root = Arc::new(Leaf::<L1>::new().at_level(1).budgeted(hierarchy, 1));
    let layout = cohort_layout(hierarchy, 0);
    let leaves: Vec<_> = layout
        .into_iter()
        .map(|(fanin, slot)| {
            Arc::new(
                Clof::<L0, _>::with_layout(Arc::clone(&root), params, fanin, slot)
                    .at_level(0)
                    .budgeted(hierarchy, 0),
            )
        })
        .collect();
    Ok(ClofTree::new(leaves, hierarchy))
}

/// Builds a 3-level composition `l0-l1-l2` over a 3-level hierarchy.
pub fn build3<L0: RawLock, L1: RawLock, L2: RawLock>(
    hierarchy: &Hierarchy,
    params: ClofParams,
) -> Result<ClofTree<Clof<L0, Clof<L1, Leaf<L2>>>>, ClofError> {
    check_levels(hierarchy, 3)?;
    let root = Arc::new(Leaf::<L2>::new().at_level(2).budgeted(hierarchy, 2));
    let mids: Vec<_> = cohort_layout(hierarchy, 1)
        .into_iter()
        .map(|(fanin, slot)| {
            Arc::new(
                Clof::<L1, _>::with_layout(Arc::clone(&root), params, fanin, slot)
                    .at_level(1)
                    .budgeted(hierarchy, 1),
            )
        })
        .collect();
    let leaves: Vec<_> = cohort_layout(hierarchy, 0)
        .into_iter()
        .enumerate()
        .map(|(cohort, (fanin, slot))| {
            // The mid-level cohort above this leaf cohort: take any member
            // CPU and look up its level-1 cohort.
            let cpu = hierarchy.cohort_members(0, cohort)[0];
            let mid = hierarchy.cohort(1, cpu);
            Arc::new(
                Clof::<L0, _>::with_layout(Arc::clone(&mids[mid]), params, fanin, slot)
                    .at_level(0)
                    .budgeted(hierarchy, 0),
            )
        })
        .collect();
    Ok(ClofTree::new(leaves, hierarchy))
}

/// Builds a 4-level composition `l0-l1-l2-l3` over a 4-level hierarchy.
pub fn build4<L0: RawLock, L1: RawLock, L2: RawLock, L3: RawLock>(
    hierarchy: &Hierarchy,
    params: ClofParams,
) -> Result<ClofTree<Clof<L0, Clof<L1, Clof<L2, Leaf<L3>>>>>, ClofError> {
    check_levels(hierarchy, 4)?;
    let root = Arc::new(Leaf::<L3>::new().at_level(3).budgeted(hierarchy, 3));
    let l2: Vec<_> = cohort_layout(hierarchy, 2)
        .into_iter()
        .map(|(fanin, slot)| {
            Arc::new(
                Clof::<L2, _>::with_layout(Arc::clone(&root), params, fanin, slot)
                    .at_level(2)
                    .budgeted(hierarchy, 2),
            )
        })
        .collect();
    let l1: Vec<_> = cohort_layout(hierarchy, 1)
        .into_iter()
        .enumerate()
        .map(|(cohort, (fanin, slot))| {
            let cpu = hierarchy.cohort_members(1, cohort)[0];
            let up = hierarchy.cohort(2, cpu);
            Arc::new(
                Clof::<L1, _>::with_layout(Arc::clone(&l2[up]), params, fanin, slot)
                    .at_level(1)
                    .budgeted(hierarchy, 1),
            )
        })
        .collect();
    let leaves: Vec<_> = cohort_layout(hierarchy, 0)
        .into_iter()
        .enumerate()
        .map(|(cohort, (fanin, slot))| {
            let cpu = hierarchy.cohort_members(0, cohort)[0];
            let up = hierarchy.cohort(1, cpu);
            Arc::new(
                Clof::<L0, _>::with_layout(Arc::clone(&l1[up]), params, fanin, slot)
                    .at_level(0)
                    .budgeted(hierarchy, 0),
            )
        })
        .collect();
    Ok(ClofTree::new(leaves, hierarchy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_locks::{ClhLock, McsLock, TicketLock};
    use clof_topology::platforms;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn native_hint_matches_info() {
        // Keep `LockInfo::waiter_hint` (which `has_native_hint` reads) in
        // sync with the actual implementations: probe each lock held
        // uncontended. Anderson is the regression case — it always
        // answers `Some`, but a previous name-keyed version of
        // `has_native_hint` omitted it and kept the redundant
        // read-indicator traffic.
        use clof_locks::{AndersonLock, BackoffLock, Hemlock, HemlockCtr, RawLock, TtasLock};
        fn probe<L: RawLock>() -> bool {
            let lock = L::default();
            let mut ctx = L::Context::default();
            lock.acquire(&mut ctx);
            let hint = lock.has_waiters_hint(&ctx).is_some();
            lock.release(&mut ctx);
            hint
        }
        assert_eq!(probe::<TicketLock>(), has_native_hint::<TicketLock>());
        assert_eq!(probe::<McsLock>(), has_native_hint::<McsLock>());
        assert_eq!(probe::<ClhLock>(), has_native_hint::<ClhLock>());
        assert_eq!(probe::<Hemlock>(), has_native_hint::<Hemlock>());
        assert_eq!(probe::<HemlockCtr>(), has_native_hint::<HemlockCtr>());
        assert_eq!(probe::<TtasLock>(), has_native_hint::<TtasLock>());
        assert_eq!(probe::<BackoffLock>(), has_native_hint::<BackoffLock>());
        assert_eq!(probe::<AndersonLock>(), has_native_hint::<AndersonLock>());
        assert!(
            has_native_hint::<AndersonLock>(),
            "Anderson provides a native hint and must skip the waiter counter"
        );
    }

    #[test]
    fn names_and_levels() {
        type T = Clof<McsLock, Clof<ClhLock, Leaf<TicketLock>>>;
        assert_eq!(T::name(), "mcs-clh-tkt");
        assert_eq!(T::levels(), 3);
        assert!(T::fair());
    }

    #[test]
    fn unfair_component_propagates() {
        use clof_locks::TtasLock;
        type T = Clof<McsLock, Leaf<TtasLock>>;
        assert!(!T::fair());
    }

    #[test]
    fn level_count_checked() {
        let h = platforms::tiny(); // 3 levels
        assert!(build2::<McsLock, TicketLock>(&h, ClofParams::default()).is_err());
        assert!(build3::<McsLock, ClhLock, TicketLock>(&h, ClofParams::default()).is_ok());
    }

    #[test]
    fn single_thread_roundtrip_3level() {
        let h = platforms::tiny();
        let tree = build3::<McsLock, ClhLock, TicketLock>(&h, ClofParams::default()).unwrap();
        assert_eq!(tree.name(), "mcs-clh-tkt");
        assert_eq!(tree.leaf_count(), 4);
        let mut handle = tree.handle(0);
        for _ in 0..100 {
            handle.acquire();
            handle.release();
        }
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn deadline_timeout_unwinds_static_tree() {
        use std::time::{Duration, Instant};
        let h = platforms::tiny();
        let tree = std::sync::Arc::new(
            build3::<McsLock, ClhLock, TicketLock>(&h, ClofParams::default()).unwrap(),
        );
        let mut holder = tree.handle(0);
        holder.acquire();
        // CPU 2 sits in a different leaf cohort on `tiny`, so the
        // timed-out climb wins its own leaf and mid levels before
        // stalling on the root — the full multi-level unwind.
        let mut waiter = tree.handle(2);
        let start = Instant::now();
        assert!(!waiter.try_acquire_until(start + Duration::from_millis(40)));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "timeout unbounded against a 40ms budget"
        );
        holder.release();
        assert!(waiter.try_acquire_until(Instant::now() + Duration::from_secs(10)));
        waiter.release();
        // Uncontended try path still composes with the plain path.
        let mut h0 = tree.handle(1);
        assert!(h0.try_acquire_for(Duration::from_secs(10)));
        h0.release();
        h0.acquire();
        h0.release();
    }

    #[test]
    fn mutual_exclusion_across_cohorts() {
        const ITERS: usize = 1_500;
        let h = platforms::tiny();
        let tree = std::sync::Arc::new(
            build3::<McsLock, ClhLock, TicketLock>(&h, ClofParams::default()).unwrap(),
        );
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        // One thread per CPU of the tiny machine: spans all cohorts.
        for cpu in 0..h.ncpus() {
            let tree = std::sync::Arc::clone(&tree);
            let counter = std::sync::Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut handle = tree.handle(cpu);
                for _ in 0..ITERS {
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * ITERS);
    }

    #[test]
    fn mutual_exclusion_4level_heterogeneous() {
        use clof_locks::Hemlock;
        const ITERS: usize = 800;
        let h = clof_topology::Hierarchy::regular(&[("core", 2), ("cache", 4), ("numa", 8)], 16)
            .unwrap();
        let tree = std::sync::Arc::new(
            build4::<Hemlock, McsLock, ClhLock, TicketLock>(&h, ClofParams::default()).unwrap(),
        );
        assert_eq!(tree.name(), "hem-mcs-clh-tkt");
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for cpu in (0..16).step_by(2) {
            let tree = std::sync::Arc::clone(&tree);
            let counter = std::sync::Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let mut handle = tree.handle(cpu);
                for _ in 0..ITERS {
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * ITERS);
    }

    #[test]
    fn keep_local_threshold_bounds_passing() {
        // With H = 2 and two threads in one cohort, the high lock must be
        // released at least every second hand-off; we just check liveness
        // across cohorts under a small threshold.
        let h = platforms::tiny();
        let params = ClofParams {
            keep_local_threshold: 2,
        };
        let tree =
            std::sync::Arc::new(build3::<TicketLock, TicketLock, TicketLock>(&h, params).unwrap());
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for cpu in [0usize, 1, 4, 5] {
            let tree = std::sync::Arc::clone(&tree);
            let counter = std::sync::Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let mut handle = tree.handle(cpu);
                for _ in 0..500 {
                    handle.acquire();
                    counter.fetch_add(1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn build1_flat() {
        let h = clof_topology::Hierarchy::flat(4).unwrap();
        let tree = build1::<TicketLock>(&h).unwrap();
        let mut handle = tree.handle(3);
        handle.acquire();
        handle.release();
        assert_eq!(tree.name(), "tkt");
    }
}
