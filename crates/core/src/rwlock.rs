//! A NUMA-aware reader-writer lock over a CLoF composition.
//!
//! The paper's `inc_waiters`/`has_waiters` read indicator is borrowed
//! from Calciu et al.'s NUMA-aware reader-writer locks (its reference
//! \[5\]); this module closes the loop by building that design *on top
//! of* CLoF: writers serialize through a full CLoF composition (getting
//! all of its NUMA-aware hand-off behaviour), while readers only touch a
//! **per-leaf-cohort reader counter** on their own cache line — readers
//! in different cohorts never share a line, the NUMA-friendly property
//! that motivates cohort RW locks.
//!
//! The design is the classic C-RW neutral-preference lock:
//!
//! * **read**: increment the cohort's reader count, then check the
//!   writer flag; if a writer is active, back out and wait.
//! * **write**: acquire the CLoF lock (mutual exclusion among writers +
//!   NUMA-aware queueing), raise the writer flag, then wait for every
//!   cohort's reader count to drain.
//!
//! The increment→check vs. flag→scan protocol is a store/load (Dekker)
//! pattern; both sides use `SeqCst` so neither can pass the other — the
//! one place in this crate where sequential consistency is genuinely
//! required.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use clof_locks::Backoff;
use clof_topology::{CpuId, Hierarchy};

use crate::dynlock::{DynClofLock, DynHandle};
use crate::error::ClofError;
use crate::kind::LockKind;

/// One cache line per cohort reader counter.
#[repr(align(128))]
struct PaddedCount(AtomicUsize);

/// A NUMA-aware reader-writer lock: CLoF-composed writer path,
/// per-cohort reader indicators.
///
/// # Examples
///
/// ```
/// use clof::rwlock::ClofRwLock;
/// use clof::LockKind;
/// use clof_topology::platforms;
///
/// let lock = ClofRwLock::build(
///     &platforms::tiny(),
///     &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
/// )
/// .unwrap();
/// let mut writer = lock.writer_handle(0);
///
/// lock.read_lock(1);
/// lock.read_lock(5); // concurrent reader in another cohort
/// lock.read_unlock(5);
/// lock.read_unlock(1);
///
/// writer.write_lock();
/// writer.write_unlock();
/// ```
pub struct ClofRwLock {
    write_lock: Arc<DynClofLock>,
    writer_active: AtomicBool,
    readers: Vec<PaddedCount>,
    cpu_to_cohort: Vec<usize>,
}

impl ClofRwLock {
    /// Builds the RW lock over `locks` composed on `hierarchy`.
    ///
    /// # Errors
    ///
    /// Propagates [`DynClofLock::build`] errors.
    pub fn build(hierarchy: &Hierarchy, locks: &[LockKind]) -> Result<Arc<Self>, ClofError> {
        let write_lock = Arc::new(DynClofLock::build(hierarchy, locks)?);
        let cohorts = hierarchy.cohort_count(0);
        Ok(Arc::new(ClofRwLock {
            write_lock,
            writer_active: AtomicBool::new(false),
            readers: (0..cohorts).map(|_| PaddedCount(AtomicUsize::new(0))).collect(),
            cpu_to_cohort: (0..hierarchy.ncpus())
                .map(|c| hierarchy.cohort(0, c))
                .collect(),
        }))
    }

    /// Acquires the lock for reading on behalf of a thread on `cpu`.
    ///
    /// Readers of different cohorts proceed fully in parallel (disjoint
    /// counters); a reader only waits while a writer is active.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn read_lock(&self, cpu: CpuId) {
        let count = &self.readers[self.cpu_to_cohort[cpu]].0;
        let mut backoff = Backoff::new();
        loop {
            // Announce, then check: SeqCst RMW so the subsequent flag
            // load cannot be satisfied before the announcement is
            // globally visible (Dekker with the writer's store→scan).
            count.fetch_add(1, Ordering::SeqCst);
            if !self.writer_active.load(Ordering::SeqCst) {
                return;
            }
            // A writer is active (or draining us): back out and wait.
            count.fetch_sub(1, Ordering::SeqCst);
            while self.writer_active.load(Ordering::Acquire) {
                backoff.snooze();
            }
            backoff.reset();
        }
    }

    /// Releases a read acquisition made from `cpu`.
    ///
    /// Must pair with a successful [`read_lock`](Self::read_lock) from
    /// the same CPU's cohort.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn read_unlock(&self, cpu: CpuId) {
        // Release: publish the critical section's reads... (readers don't
        // write shared data, but pairing keeps the drain scan ordered).
        self.readers[self.cpu_to_cohort[cpu]]
            .0
            .fetch_sub(1, Ordering::Release);
    }

    /// A writer handle for a thread on `cpu` (holds the CLoF context).
    pub fn writer_handle(self: &Arc<Self>, cpu: CpuId) -> ClofRwWriter {
        ClofRwWriter {
            lock: Arc::clone(self),
            handle: self.write_lock.handle(cpu),
        }
    }

    /// Current reader count (racy; diagnostics).
    pub fn reader_count(&self) -> usize {
        self.readers
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Writer side of a [`ClofRwLock`].
pub struct ClofRwWriter {
    lock: Arc<ClofRwLock>,
    handle: DynHandle,
}

impl ClofRwWriter {
    /// Acquires the lock for writing: serializes against other writers
    /// through the CLoF composition, then drains all readers.
    pub fn write_lock(&mut self) {
        self.handle.acquire();
        // SeqCst store, then SeqCst scans: pairs with the readers'
        // announce-then-check.
        self.lock.writer_active.store(true, Ordering::SeqCst);
        for count in &self.lock.readers {
            let mut backoff = Backoff::new();
            while count.0.load(Ordering::SeqCst) != 0 {
                backoff.snooze();
            }
        }
    }

    /// Releases a write acquisition.
    ///
    /// Must pair with [`write_lock`](Self::write_lock).
    pub fn write_unlock(&mut self) {
        self.lock.writer_active.store(false, Ordering::Release);
        self.handle.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;
    use std::sync::atomic::AtomicU64;

    fn build_tiny() -> Arc<ClofRwLock> {
        ClofRwLock::build(
            &platforms::tiny(),
            &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        )
        .unwrap()
    }

    #[test]
    fn readers_are_concurrent() {
        let lock = build_tiny();
        lock.read_lock(0);
        lock.read_lock(7); // must not block
        assert_eq!(lock.reader_count(), 2);
        lock.read_unlock(7);
        lock.read_unlock(0);
        assert_eq!(lock.reader_count(), 0);
    }

    #[test]
    fn writer_excludes_writer() {
        let lock = build_tiny();
        let mut w = lock.writer_handle(0);
        w.write_lock();
        w.write_unlock();
        let mut w2 = lock.writer_handle(4);
        w2.write_lock();
        w2.write_unlock();
    }

    #[test]
    fn writer_waits_for_readers_and_blocks_new_ones() {
        let lock = build_tiny();
        lock.read_lock(0);
        let started = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let writer = {
            let lock = Arc::clone(&lock);
            let started = Arc::clone(&started);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut w = lock.writer_handle(4);
                started.store(1, Ordering::Release);
                w.write_lock();
                done.store(1, Ordering::Release);
                w.write_unlock();
            })
        };
        while started.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Writer must still be draining us.
        assert_eq!(done.load(Ordering::Acquire), 0);
        lock.read_unlock(0);
        writer.join().unwrap();
        assert_eq!(done.load(Ordering::Acquire), 1);
    }

    #[test]
    fn no_torn_reads_under_mixed_load() {
        // Writers keep two fields equal; readers must never observe them
        // differing.
        let lock = build_tiny();
        let data = Arc::new((AtomicU64::new(0), AtomicU64::new(0)));
        let violations = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for cpu in 0..4usize {
            let lock = Arc::clone(&lock);
            let data = Arc::clone(&data);
            let mut w = lock.writer_handle(cpu * 2);
            threads.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    w.write_lock();
                    data.0.store(i, Ordering::Relaxed);
                    std::hint::spin_loop();
                    data.1.store(i, Ordering::Relaxed);
                    w.write_unlock();
                }
            }));
        }
        for cpu in 0..4usize {
            let lock = Arc::clone(&lock);
            let data = Arc::clone(&data);
            let violations = Arc::clone(&violations);
            threads.push(std::thread::spawn(move || {
                for _ in 0..600 {
                    lock.read_lock(cpu * 2 + 1);
                    let a = data.0.load(Ordering::Relaxed);
                    let b = data.1.load(Ordering::Relaxed);
                    if a != b {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    lock.read_unlock(cpu * 2 + 1);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(violations.load(Ordering::Relaxed), 0);
        assert_eq!(lock.reader_count(), 0);
    }

    #[test]
    fn composition_errors_propagate() {
        assert!(ClofRwLock::build(&platforms::tiny(), &[LockKind::Mcs]).is_err());
    }
}
