//! Per-cohort level metadata: the paper's `MetaData` (`d` in the grammar).
//!
//! Every composed lock extends its *low* lock with metadata used "to link
//! with the high lock and to pass locks among different levels"
//! (paper §4.1.1): a waiter read-indicator, the `has_high_lock` pass flag,
//! the `keep_local` counter, and the context through which this cohort
//! acquires/releases the high lock.
//!
//! # Memory layout
//!
//! The metadata is split by *who writes it*:
//!
//! * The read-indicator is **striped**: one 128-byte-aligned counter per
//!   child slot (sibling cohort below this node, or CPU within a leaf
//!   cohort). A waiter's `inc`/`dec` bracket touches only its own
//!   stripe, so concurrent arrivals from different children never
//!   contend on a cache line — the same core-local bookkeeping CNA and
//!   Fissile locks use to survive contention.
//! * Owner-written state (`has_high_lock`, the `keep_local` counter, the
//!   high context) shares one padded block: it is only ever accessed by
//!   the current low-lock owner, so packing it densely is free while
//!   padding it keeps waiter traffic off it.
//!
//! `has_waiters` (owner-only, off the waiters' critical path) sums the
//! stripes with an early-exit scan. Staleness stays tolerable exactly as
//! in §4.1.2: a missed waiter only causes an early high-lock release,
//! never a safety violation.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use clof_locks::{CachePadded, CACHE_LINE};

/// Upper bound on read-indicator stripes per level node.
///
/// Stripes cost one cache line each; past a handful the scan cost of
/// `has_waiters` outweighs the isolation win, so fan-ins larger than
/// this hash multiple children onto one stripe (`slot & mask`).
pub const MAX_WAITER_STRIPES: usize = 8;

/// Tunable parameters of a composed lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClofParams {
    /// `keep_local` threshold *H*: how many consecutive intra-cohort
    /// hand-offs are allowed before the high lock must be released to
    /// other cohorts. The paper uses `H = 128` per level by default and
    /// warns that excessive values hurt short-term fairness (§4.1.2).
    pub keep_local_threshold: u32,
}

impl Default for ClofParams {
    fn default() -> Self {
        ClofParams {
            keep_local_threshold: 128,
        }
    }
}

/// Spin budget (in backoff rounds) of a waiter at a level whose cohorts
/// span one CPU: the most local waiter spins longest before parking.
#[cfg(feature = "park")]
pub const BASE_SPIN_ROUNDS: u32 = 64;

/// Floor on any level's spin budget: even a machine-spanning top-level
/// waiter spins a few rounds first, so an imminent hand-off is still
/// caught without a syscall.
#[cfg(feature = "park")]
pub const MIN_SPIN_ROUNDS: u32 = 4;

/// Derives a level's spin budget from its topology distance.
///
/// `span` is the number of CPUs one cohort of the level covers
/// ([`cohort_span`](clof_topology::Hierarchy::cohort_span)). Leaf levels
/// (small span) hand off between cache-close CPUs in tens of
/// nanoseconds, so spinning the full budget is cheaper than a park/wake
/// round-trip; top levels span sockets, where a waiting slot is worth
/// the most CPU time and the hand-off latency dwarfs a futex wake — so
/// the budget shrinks inversely with span, clamped to
/// [[`MIN_SPIN_ROUNDS`], [`BASE_SPIN_ROUNDS`]].
#[cfg(feature = "park")]
pub fn spin_budget_for_span(span: usize) -> u32 {
    let span = span.max(1).min(u32::MAX as usize) as u32;
    (BASE_SPIN_ROUNDS / span).clamp(MIN_SPIN_ROUNDS, BASE_SPIN_ROUNDS)
}

/// Owner-written metadata words; packed into one [`CachePadded`] block.
struct OwnerState<C> {
    /// The `has_high_lock` flag: set by `pass_high_lock`, cleared by
    /// `clear_high_lock`.
    high_held: AtomicBool,
    /// Consecutive local hand-offs since the high lock was last acquired
    /// or let go; drives `keep_local`.
    handovers: AtomicU32,
    /// Threshold *H* for `keep_local`.
    threshold: u32,
    /// Context used by whichever thread owns the low lock to operate the
    /// high lock. Exclusivity is not statically enforceable here — it is
    /// the **context invariant**: only the low-lock owner touches it, and
    /// ownership transfer happens through the low lock's release→acquire
    /// synchronization.
    high_ctx: UnsafeCell<C>,
    /// Detector for context-invariant violations; compiled in debug
    /// builds and whenever the `testkit` feature is on (the stress
    /// oracle's context-invariant checker, paper §4.1).
    #[cfg(any(debug_assertions, feature = "testkit"))]
    ctx_busy: AtomicBool,
}

// Layout contract: the owner block (for context-free compositions) fits
// in one cache line, and a stripe owns exactly one.
const _: () = {
    assert!(std::mem::size_of::<CachePadded<OwnerState<()>>>() == CACHE_LINE);
    assert!(std::mem::align_of::<CachePadded<OwnerState<()>>>() == CACHE_LINE);
    assert!(std::mem::size_of::<CachePadded<AtomicU32>>() == CACHE_LINE);
    assert!(MAX_WAITER_STRIPES.is_power_of_two());
};

/// Metadata attached to one cohort's low lock.
///
/// `C` is the *high* lock's context type; the cell is handed from owner to
/// owner of the low lock.
pub struct LevelMeta<C> {
    /// Striped read indicator: number of threads between `inc_waiters`
    /// and `dec_waiters` (paper §4.1.2, after Calciu et al.'s read
    /// indicator), sharded by child slot.
    stripes: Box<[CachePadded<AtomicU32>]>,
    /// `stripes.len() - 1`; stripe selection is `slot & stripe_mask`.
    stripe_mask: u32,
    /// Per-level spin budget (backoff rounds before a waiter parks),
    /// derived from topology distance at build time and runtime-tunable
    /// so `adapt` can carry the waiting policy across hot-swaps.
    /// Read-mostly (written only by tuning), so it lives outside the
    /// owner block and off the stripes.
    #[cfg(feature = "park")]
    spin_budget: AtomicU32,
    /// Owner-only words, isolated from the waiter stripes.
    owner: CachePadded<OwnerState<C>>,
}

// SAFETY: `LevelMeta` acts like a mutex-protected cell for `C` (the low
// lock is the mutex); all other fields are atomics. `C: Send` suffices, as
// no `&C` is ever shared across threads concurrently.
unsafe impl<C: Send> Sync for LevelMeta<C> {}

impl<C: Default> LevelMeta<C> {
    /// Creates metadata with the given keep-local threshold and a single
    /// indicator stripe (fan-in 1).
    pub fn new(params: ClofParams) -> Self {
        Self::with_fanin(params, 1)
    }

    /// Creates metadata sized for `fanin` children (sibling cohorts or
    /// CPUs sharing a leaf): one indicator stripe per child slot, rounded
    /// up to a power of two and capped at [`MAX_WAITER_STRIPES`].
    pub fn with_fanin(params: ClofParams, fanin: usize) -> Self {
        let stripes = fanin
            .max(1)
            .next_power_of_two()
            .min(MAX_WAITER_STRIPES);
        LevelMeta {
            stripes: (0..stripes)
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
            stripe_mask: stripes as u32 - 1,
            #[cfg(feature = "park")]
            spin_budget: AtomicU32::new(clof_locks::SPIN_FOREVER),
            owner: CachePadded::new(OwnerState {
                high_held: AtomicBool::new(false),
                handovers: AtomicU32::new(0),
                threshold: params.keep_local_threshold.max(1),
                high_ctx: UnsafeCell::new(C::default()),
                #[cfg(any(debug_assertions, feature = "testkit"))]
                ctx_busy: AtomicBool::new(false),
            }),
        }
    }
}

impl<C> LevelMeta<C> {
    /// `inc_waiters`: announce this thread is about to acquire the low
    /// lock. `slot` identifies the caller's child position (sibling
    /// cohort index, or CPU index within a leaf cohort) and selects the
    /// stripe; the matching [`dec_waiters`](Self::dec_waiters) must pass
    /// the same slot.
    ///
    /// All metadata accesses are intentionally `Relaxed`: the paper's
    /// VSync analysis found that every access introduced by the auxiliary
    /// functions of `lockgen` can be maximally relaxed as long as the
    /// basic locks keep their own barriers (§4.2.3) — the low lock's
    /// release→acquire edge orders metadata for the next owner, and the
    /// waiter counter tolerates staleness (a missed waiter only causes an
    /// early high-lock release, never a safety violation).
    #[inline]
    pub fn inc_waiters(&self, slot: u32) {
        self.stripe(slot).fetch_add(1, Ordering::Relaxed);
    }

    /// `dec_waiters`: the thread finished acquiring the low lock.
    #[inline]
    pub fn dec_waiters(&self, slot: u32) {
        self.stripe(slot).fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    fn stripe(&self, slot: u32) -> &AtomicU32 {
        // SAFETY-free speed: the mask keeps the index in range by
        // construction (stripe count is a power of two).
        &self.stripes[(slot & self.stripe_mask) as usize]
    }

    /// `has_waiters`: is any thread of this cohort waiting on the low
    /// lock? Owner-only (release path), so the stripe scan is off the
    /// waiters' critical path; it exits at the first non-zero stripe.
    #[inline]
    pub fn has_waiters(&self) -> bool {
        self.stripes
            .iter()
            .any(|s| s.load(Ordering::Relaxed) > 0)
    }

    /// `has_high_lock`: did the previous owner pass the high lock to this
    /// cohort?
    #[inline]
    pub fn has_high_lock(&self) -> bool {
        self.owner.high_held.load(Ordering::Relaxed)
    }

    /// `pass_high_lock`: leave the high lock acquired for the next
    /// low-lock owner.
    #[inline]
    pub fn pass_high_lock(&self) {
        self.owner.high_held.store(true, Ordering::Relaxed);
    }

    /// `clear_high_lock`: the high lock is about to be released.
    #[inline]
    pub fn clear_high_lock(&self) {
        self.owner.high_held.store(false, Ordering::Relaxed);
    }

    /// `keep_local`: may the high lock stay in this cohort for one more
    /// hand-off?
    ///
    /// Increments the hand-off counter and returns `false` (resetting the
    /// counter) every `threshold` calls, bounding unfairness towards
    /// other cohorts exactly as HMCS does (§4.1.2).
    #[inline]
    pub fn keep_local(&self) -> bool {
        // Only the current low-lock owner calls this, so a plain load +
        // store replaces the locked RMW; the counter stays atomic only
        // because successive owners are different threads, and the low
        // lock's release→acquire edge publishes each owner's store to
        // the next.
        let n = self.owner.handovers.load(Ordering::Relaxed) + 1;
        if n >= self.owner.threshold {
            self.owner.handovers.store(0, Ordering::Relaxed);
            false
        } else {
            self.owner.handovers.store(n, Ordering::Relaxed);
            true
        }
    }

    /// Grants the caller the high-lock context.
    ///
    /// # Safety
    ///
    /// The caller must own this metadata's low lock. The context invariant
    /// (only the low-lock owner uses the context, release order high →
    /// low) makes the access exclusive; the low lock's release→acquire
    /// synchronization publishes the context state to the next owner.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn high_ctx(&self) -> &mut C {
        // SAFETY: Exclusivity per the function's safety contract.
        unsafe { &mut *self.owner.high_ctx.get() }
    }

    /// Marks the high context busy (debug or `testkit` builds): panics
    /// on overlap, i.e. on a context-invariant violation.
    #[inline]
    pub fn debug_ctx_enter(&self) {
        #[cfg(any(debug_assertions, feature = "testkit"))]
        {
            let was = self.owner.ctx_busy.swap(true, Ordering::Relaxed);
            assert!(
                !was,
                "context invariant violated: concurrent use of a high-lock context"
            );
        }
    }

    /// Marks the high context idle again (debug or `testkit` builds).
    #[inline]
    pub fn debug_ctx_exit(&self) {
        #[cfg(any(debug_assertions, feature = "testkit"))]
        {
            self.owner.ctx_busy.store(false, Ordering::Relaxed);
        }
    }

    /// Current waiter-count snapshot summed over stripes (diagnostics).
    pub fn waiter_count(&self) -> u32 {
        self.stripes
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of indicator stripes (diagnostics / layout tests).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// This level's spin budget: rounds a waiter spins on the low lock
    /// before parking ([`SPIN_FOREVER`](clof_locks::SPIN_FOREVER) until
    /// a builder installs a topology-derived budget).
    #[cfg(feature = "park")]
    #[inline]
    pub fn spin_budget(&self) -> u32 {
        self.spin_budget.load(Ordering::Relaxed)
    }

    /// Retunes this level's spin budget at runtime. Relaxed is enough:
    /// in-flight waiters may use either value; the budget only shapes
    /// the spin/park trade-off, never correctness.
    #[cfg(feature = "park")]
    #[inline]
    pub fn set_spin_budget(&self, rounds: u32) {
        self.spin_budget.store(rounds, Ordering::Relaxed);
    }

    /// The configured keep-local threshold.
    pub fn threshold(&self) -> u32 {
        self.owner.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiter_counter_round_trips() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams::default());
        assert!(!meta.has_waiters());
        meta.inc_waiters(0);
        meta.inc_waiters(0);
        assert!(meta.has_waiters());
        assert_eq!(meta.waiter_count(), 2);
        meta.dec_waiters(0);
        meta.dec_waiters(0);
        assert!(!meta.has_waiters());
    }

    #[test]
    fn stripes_scale_with_fanin_and_cap() {
        let m1: LevelMeta<()> = LevelMeta::new(ClofParams::default());
        assert_eq!(m1.stripe_count(), 1);
        let m3: LevelMeta<()> = LevelMeta::with_fanin(ClofParams::default(), 3);
        assert_eq!(m3.stripe_count(), 4);
        let m8: LevelMeta<()> = LevelMeta::with_fanin(ClofParams::default(), 8);
        assert_eq!(m8.stripe_count(), 8);
        let m64: LevelMeta<()> = LevelMeta::with_fanin(ClofParams::default(), 64);
        assert_eq!(m64.stripe_count(), MAX_WAITER_STRIPES);
        let m0: LevelMeta<()> = LevelMeta::with_fanin(ClofParams::default(), 0);
        assert_eq!(m0.stripe_count(), 1);
    }

    #[test]
    fn distinct_slots_hit_distinct_stripes() {
        let meta: LevelMeta<()> = LevelMeta::with_fanin(ClofParams::default(), 4);
        meta.inc_waiters(0);
        meta.inc_waiters(1);
        meta.inc_waiters(3);
        assert_eq!(meta.waiter_count(), 3);
        assert!(meta.has_waiters());
        // Slots beyond the stripe count wrap via the mask instead of
        // indexing out of bounds.
        meta.inc_waiters(7);
        assert_eq!(meta.waiter_count(), 4);
        for slot in [0, 1, 3, 7] {
            meta.dec_waiters(slot);
        }
        assert!(!meta.has_waiters());
        assert_eq!(meta.waiter_count(), 0);
    }

    #[test]
    fn any_single_stripe_is_visible() {
        // The early-exit scan must see a waiter regardless of which
        // stripe it registered on.
        let meta: LevelMeta<()> = LevelMeta::with_fanin(ClofParams::default(), 8);
        for slot in 0..8 {
            meta.inc_waiters(slot);
            assert!(meta.has_waiters(), "slot {slot} invisible");
            meta.dec_waiters(slot);
            assert!(!meta.has_waiters());
        }
    }

    #[test]
    fn pass_flag_toggles() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams::default());
        assert!(!meta.has_high_lock());
        meta.pass_high_lock();
        assert!(meta.has_high_lock());
        meta.clear_high_lock();
        assert!(!meta.has_high_lock());
    }

    #[test]
    fn keep_local_honours_threshold() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams {
            keep_local_threshold: 3,
        });
        assert!(meta.keep_local());
        assert!(meta.keep_local());
        assert!(!meta.keep_local()); // third call hits H = 3
        assert!(meta.keep_local()); // counter was reset
    }

    #[test]
    fn keep_local_denies_every_h_calls_over_long_runs() {
        // The load+store rewrite must preserve the H-bound shape: over
        // any window of `threshold` consecutive calls, at least one
        // returns false, and the denial pattern is exactly periodic for
        // a single-threaded caller.
        for threshold in [1u32, 2, 3, 7, 128] {
            let meta: LevelMeta<()> = LevelMeta::new(ClofParams {
                keep_local_threshold: threshold,
            });
            let calls = (threshold as usize) * 5 + 3;
            let results: Vec<bool> = (0..calls).map(|_| meta.keep_local()).collect();
            for window in results.windows(threshold as usize) {
                assert!(
                    window.iter().any(|kept| !kept),
                    "H={threshold}: window of {threshold} calls all kept local"
                );
            }
        }
    }

    #[test]
    fn threshold_of_one_never_keeps_local() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams {
            keep_local_threshold: 1,
        });
        for _ in 0..5 {
            assert!(!meta.keep_local());
        }
    }

    #[test]
    fn zero_threshold_clamped_to_one() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams {
            keep_local_threshold: 0,
        });
        assert_eq!(meta.threshold(), 1);
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "testkit"))]
    #[should_panic(expected = "context invariant violated")]
    fn debug_ctx_detects_overlap() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams::default());
        meta.debug_ctx_enter();
        meta.debug_ctx_enter();
    }

    #[test]
    #[cfg(feature = "park")]
    fn spin_budget_defaults_to_forever_and_retunes() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams::default());
        assert_eq!(meta.spin_budget(), clof_locks::SPIN_FOREVER);
        meta.set_spin_budget(32);
        assert_eq!(meta.spin_budget(), 32);
    }

    #[test]
    #[cfg(feature = "park")]
    fn budget_derivation_shrinks_with_span() {
        assert_eq!(spin_budget_for_span(1), BASE_SPIN_ROUNDS);
        assert_eq!(spin_budget_for_span(2), 32);
        assert_eq!(spin_budget_for_span(8), 8);
        // Machine-spanning levels hit the floor, never zero.
        assert_eq!(spin_budget_for_span(64), MIN_SPIN_ROUNDS);
        assert_eq!(spin_budget_for_span(100_000), MIN_SPIN_ROUNDS);
        assert_eq!(spin_budget_for_span(0), BASE_SPIN_ROUNDS, "span clamped to 1");
        // Monotone non-increasing in span.
        let budgets: Vec<u32> = (1..=128).map(spin_budget_for_span).collect();
        assert!(budgets.windows(2).all(|w| w[0] >= w[1]));
    }
}
