//! Per-cohort level metadata: the paper's `MetaData` (`d` in the grammar).
//!
//! Every composed lock extends its *low* lock with metadata used "to link
//! with the high lock and to pass locks among different levels"
//! (paper §4.1.1): a waiter read-indicator, the `has_high_lock` pass flag,
//! the `keep_local` counter, and the context through which this cohort
//! acquires/releases the high lock.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Tunable parameters of a composed lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClofParams {
    /// `keep_local` threshold *H*: how many consecutive intra-cohort
    /// hand-offs are allowed before the high lock must be released to
    /// other cohorts. The paper uses `H = 128` per level by default and
    /// warns that excessive values hurt short-term fairness (§4.1.2).
    pub keep_local_threshold: u32,
}

impl Default for ClofParams {
    fn default() -> Self {
        ClofParams {
            keep_local_threshold: 128,
        }
    }
}

/// Metadata attached to one cohort's low lock.
///
/// `C` is the *high* lock's context type; the cell is handed from owner to
/// owner of the low lock.
pub struct LevelMeta<C> {
    /// Read indicator: number of threads between `inc_waiters` and
    /// `dec_waiters` (paper §4.1.2, after Calciu et al.'s read
    /// indicator).
    waiters: AtomicU32,
    /// The `has_high_lock` flag: set by `pass_high_lock`, cleared by
    /// `clear_high_lock`.
    high_held: AtomicBool,
    /// Consecutive local hand-offs since the high lock was last acquired
    /// or let go; drives `keep_local`.
    handovers: AtomicU32,
    /// Threshold *H* for `keep_local`.
    threshold: u32,
    /// Context used by whichever thread owns the low lock to operate the
    /// high lock. Exclusivity is not statically enforceable here — it is
    /// the **context invariant**: only the low-lock owner touches it, and
    /// ownership transfer happens through the low lock's release→acquire
    /// synchronization.
    high_ctx: UnsafeCell<C>,
    /// Detector for context-invariant violations; compiled in debug
    /// builds and whenever the `testkit` feature is on (the stress
    /// oracle's context-invariant checker, paper §4.1).
    #[cfg(any(debug_assertions, feature = "testkit"))]
    ctx_busy: AtomicBool,
}

// SAFETY: `LevelMeta` acts like a mutex-protected cell for `C` (the low
// lock is the mutex); all other fields are atomics. `C: Send` suffices, as
// no `&C` is ever shared across threads concurrently.
unsafe impl<C: Send> Sync for LevelMeta<C> {}

impl<C: Default> LevelMeta<C> {
    /// Creates metadata with the given keep-local threshold.
    pub fn new(params: ClofParams) -> Self {
        LevelMeta {
            waiters: AtomicU32::new(0),
            high_held: AtomicBool::new(false),
            handovers: AtomicU32::new(0),
            threshold: params.keep_local_threshold.max(1),
            high_ctx: UnsafeCell::new(C::default()),
            #[cfg(any(debug_assertions, feature = "testkit"))]
            ctx_busy: AtomicBool::new(false),
        }
    }
}

impl<C> LevelMeta<C> {
    /// `inc_waiters`: announce this thread is about to acquire the low
    /// lock.
    ///
    /// All metadata accesses are intentionally `Relaxed`: the paper's
    /// VSync analysis found that every access introduced by the auxiliary
    /// functions of `lockgen` can be maximally relaxed as long as the
    /// basic locks keep their own barriers (§4.2.3) — the low lock's
    /// release→acquire edge orders metadata for the next owner, and the
    /// waiter counter tolerates staleness (a missed waiter only causes an
    /// early high-lock release, never a safety violation).
    #[inline]
    pub fn inc_waiters(&self) {
        self.waiters.fetch_add(1, Ordering::Relaxed);
    }

    /// `dec_waiters`: the thread finished acquiring the low lock.
    #[inline]
    pub fn dec_waiters(&self) {
        self.waiters.fetch_sub(1, Ordering::Relaxed);
    }

    /// `has_waiters`: is any thread of this cohort waiting on the low
    /// lock?
    #[inline]
    pub fn has_waiters(&self) -> bool {
        self.waiters.load(Ordering::Relaxed) > 0
    }

    /// `has_high_lock`: did the previous owner pass the high lock to this
    /// cohort?
    #[inline]
    pub fn has_high_lock(&self) -> bool {
        self.high_held.load(Ordering::Relaxed)
    }

    /// `pass_high_lock`: leave the high lock acquired for the next
    /// low-lock owner.
    #[inline]
    pub fn pass_high_lock(&self) {
        self.high_held.store(true, Ordering::Relaxed);
    }

    /// `clear_high_lock`: the high lock is about to be released.
    #[inline]
    pub fn clear_high_lock(&self) {
        self.high_held.store(false, Ordering::Relaxed);
    }

    /// `keep_local`: may the high lock stay in this cohort for one more
    /// hand-off?
    ///
    /// Increments the hand-off counter and returns `false` (resetting the
    /// counter) every `threshold` calls, bounding unfairness towards
    /// other cohorts exactly as HMCS does (§4.1.2).
    #[inline]
    pub fn keep_local(&self) -> bool {
        // Only the current low-lock owner calls this, so the RMW never
        // actually contends; it is atomic because successive owners are
        // different threads.
        let n = self.handovers.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.threshold {
            self.handovers.store(0, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    /// Grants the caller the high-lock context.
    ///
    /// # Safety
    ///
    /// The caller must own this metadata's low lock. The context invariant
    /// (only the low-lock owner uses the context, release order high →
    /// low) makes the access exclusive; the low lock's release→acquire
    /// synchronization publishes the context state to the next owner.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn high_ctx(&self) -> &mut C {
        #[cfg(any(debug_assertions, feature = "testkit"))]
        {
            // Detect overlapping uses in tests: `acquire`/`release` of the
            // high lock bracket their use of the context with this flag.
        }
        // SAFETY: Exclusivity per the function's safety contract.
        unsafe { &mut *self.high_ctx.get() }
    }

    /// Marks the high context busy (debug or `testkit` builds): panics
    /// on overlap, i.e. on a context-invariant violation.
    #[inline]
    pub fn debug_ctx_enter(&self) {
        #[cfg(any(debug_assertions, feature = "testkit"))]
        {
            let was = self.ctx_busy.swap(true, Ordering::Relaxed);
            assert!(
                !was,
                "context invariant violated: concurrent use of a high-lock context"
            );
        }
    }

    /// Marks the high context idle again (debug or `testkit` builds).
    #[inline]
    pub fn debug_ctx_exit(&self) {
        #[cfg(any(debug_assertions, feature = "testkit"))]
        {
            self.ctx_busy.store(false, Ordering::Relaxed);
        }
    }

    /// Current waiter-count snapshot (diagnostics).
    pub fn waiter_count(&self) -> u32 {
        self.waiters.load(Ordering::Relaxed)
    }

    /// The configured keep-local threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiter_counter_round_trips() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams::default());
        assert!(!meta.has_waiters());
        meta.inc_waiters();
        meta.inc_waiters();
        assert!(meta.has_waiters());
        assert_eq!(meta.waiter_count(), 2);
        meta.dec_waiters();
        meta.dec_waiters();
        assert!(!meta.has_waiters());
    }

    #[test]
    fn pass_flag_toggles() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams::default());
        assert!(!meta.has_high_lock());
        meta.pass_high_lock();
        assert!(meta.has_high_lock());
        meta.clear_high_lock();
        assert!(!meta.has_high_lock());
    }

    #[test]
    fn keep_local_honours_threshold() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams {
            keep_local_threshold: 3,
        });
        assert!(meta.keep_local());
        assert!(meta.keep_local());
        assert!(!meta.keep_local()); // third call hits H = 3
        assert!(meta.keep_local()); // counter was reset
    }

    #[test]
    fn threshold_of_one_never_keeps_local() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams {
            keep_local_threshold: 1,
        });
        for _ in 0..5 {
            assert!(!meta.keep_local());
        }
    }

    #[test]
    fn zero_threshold_clamped_to_one() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams {
            keep_local_threshold: 0,
        });
        assert_eq!(meta.threshold(), 1);
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "testkit"))]
    #[should_panic(expected = "context invariant violated")]
    fn debug_ctx_detects_overlap() {
        let meta: LevelMeta<()> = LevelMeta::new(ClofParams::default());
        meta.debug_ctx_enter();
        meta.debug_ctx_enter();
    }
}
