//! Errors of the composition framework.

use std::fmt;

use crate::kind::LockKind;

/// Errors produced when building or generating CLoF locks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClofError {
    /// The composition does not name one lock per hierarchy level.
    LevelCountMismatch {
        /// Locks named in the composition.
        locks: usize,
        /// Levels in the hierarchy (including the system level).
        levels: usize,
    },
    /// A fair composition was requested but a component is unfair
    /// (paper Theorem 4.1: the composition is fair only if every basic
    /// lock is).
    UnfairComponent {
        /// The offending component.
        kind: LockKind,
        /// Level index (0 = innermost) where it was placed.
        level: usize,
    },
    /// An unknown lock name was given to [`LockKind::parse`].
    UnknownLock {
        /// The unrecognized name.
        name: String,
    },
    /// The keep-local threshold must be at least 1.
    BadThreshold,
    /// Runtime adaptation was requested on a lock choice that cannot
    /// hot-swap (only the dynamic CLoF composition can).
    AdaptationUnsupported {
        /// Name of the non-adaptable lock choice.
        choice: String,
    },
}

impl fmt::Display for ClofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClofError::LevelCountMismatch { locks, levels } => write!(
                f,
                "composition names {locks} locks but the hierarchy has {levels} levels"
            ),
            ClofError::UnfairComponent { kind, level } => write!(
                f,
                "unfair lock `{}` at level {level}: the composition would not be \
                 starvation-free (pass `allow_unfair` to permit this)",
                kind.info().name
            ),
            ClofError::UnknownLock { name } => write!(f, "unknown lock name `{name}`"),
            ClofError::BadThreshold => write!(f, "keep-local threshold must be >= 1"),
            ClofError::AdaptationUnsupported { choice } => write!(
                f,
                "lock choice `{choice}` cannot adapt at run time; only the dynamic \
                 CLoF composition supports hot-swapping"
            ),
        }
    }
}

impl std::error::Error for ClofError {}
