//! Errors of the composition framework.

use std::fmt;

use crate::kind::LockKind;

/// Errors produced when building, generating or acquiring CLoF locks.
///
/// Marked `#[non_exhaustive]`: robustness features keep adding failure
/// modes (deadline timeouts, poisoning), so downstream `match`es must
/// carry a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClofError {
    /// The composition does not name one lock per hierarchy level.
    LevelCountMismatch {
        /// Locks named in the composition.
        locks: usize,
        /// Levels in the hierarchy (including the system level).
        levels: usize,
    },
    /// A fair composition was requested but a component is unfair
    /// (paper Theorem 4.1: the composition is fair only if every basic
    /// lock is).
    UnfairComponent {
        /// The offending component.
        kind: LockKind,
        /// Level index (0 = innermost) where it was placed.
        level: usize,
    },
    /// An unknown lock name was given to [`LockKind::parse`].
    UnknownLock {
        /// The unrecognized name.
        name: String,
    },
    /// The keep-local threshold must be at least 1.
    BadThreshold,
    /// Runtime adaptation was requested on a lock choice that cannot
    /// hot-swap (only the dynamic CLoF composition can).
    AdaptationUnsupported {
        /// Name of the non-adaptable lock choice.
        choice: String,
    },
    /// A deadline-bounded acquisition was requested on a lock choice
    /// whose algorithm has no bounded-wait protocol (the baseline locks
    /// — their unmodified protocols are the comparison point, so they
    /// get no abandonment retrofit).
    DeadlineUnsupported {
        /// Name of the lock choice without a bounded acquire.
        choice: String,
    },
    /// A deadline-bounded acquisition ran out of time before the lock
    /// was granted. The attempt left no residue: every partially
    /// acquired level was released and every queue position abandoned
    /// or handed forward (requires the `deadline` feature to ever be
    /// produced; the variant itself is always present so downstream
    /// code matches one shape under every feature set).
    Timeout,
    /// The lock was poisoned: a holder panicked inside its critical
    /// section, so the protected data may be in a torn state. Recovery
    /// goes through `clear_poison`-style APIs on the owning wrapper.
    Poisoned,
}

impl fmt::Display for ClofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClofError::LevelCountMismatch { locks, levels } => write!(
                f,
                "composition names {locks} locks but the hierarchy has {levels} levels"
            ),
            ClofError::UnfairComponent { kind, level } => write!(
                f,
                "unfair lock `{}` at level {level}: the composition would not be \
                 starvation-free (pass `allow_unfair` to permit this)",
                kind.info().name
            ),
            ClofError::UnknownLock { name } => write!(f, "unknown lock name `{name}`"),
            ClofError::BadThreshold => write!(f, "keep-local threshold must be >= 1"),
            ClofError::AdaptationUnsupported { choice } => write!(
                f,
                "lock choice `{choice}` cannot adapt at run time; only the dynamic \
                 CLoF composition supports hot-swapping"
            ),
            ClofError::DeadlineUnsupported { choice } => write!(
                f,
                "lock choice `{choice}` has no deadline-bounded acquire; use a CLoF \
                 composition"
            ),
            ClofError::Timeout => write!(f, "lock acquisition timed out"),
            ClofError::Poisoned => write!(f, "lock poisoned by a panicked holder"),
            // `#[non_exhaustive]` is for downstream crates; within the
            // crate the match is still exhaustive, but keep a wildcard
            // so adding a variant cannot break Display in a hotfix.
            #[allow(unreachable_patterns)]
            _ => write!(f, "clof error"),
        }
    }
}

impl std::error::Error for ClofError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    /// One of each variant, for Display/source coverage.
    fn all_variants() -> Vec<ClofError> {
        vec![
            ClofError::LevelCountMismatch { locks: 2, levels: 3 },
            ClofError::UnfairComponent {
                kind: LockKind::Ttas,
                level: 1,
            },
            ClofError::UnknownLock {
                name: "nope".into(),
            },
            ClofError::BadThreshold,
            ClofError::AdaptationUnsupported {
                choice: "mcs".into(),
            },
            ClofError::DeadlineUnsupported {
                choice: "hmcs".into(),
            },
            ClofError::Timeout,
            ClofError::Poisoned,
        ]
    }

    #[test]
    fn display_is_nonempty_and_distinct_for_every_variant() {
        let rendered: Vec<String> = all_variants().iter().map(|e| e.to_string()).collect();
        for (i, msg) in rendered.iter().enumerate() {
            assert!(!msg.is_empty(), "variant {i} renders empty");
            for later in &rendered[i + 1..] {
                assert_ne!(msg, later, "two variants render identically");
            }
        }
    }

    #[test]
    fn source_is_none_for_leaf_errors() {
        for e in all_variants() {
            assert!(e.source().is_none(), "{e}");
        }
    }

    #[test]
    fn timeout_and_poison_messages_name_the_failure() {
        assert!(ClofError::Timeout.to_string().contains("timed out"));
        assert!(ClofError::Poisoned.to_string().contains("poisoned"));
    }
}
