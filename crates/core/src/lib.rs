//! CLoF: a Compositional Lock Framework for multi-level NUMA systems.
//!
//! Reproduction of Chehab et al., *CLoF: A Compositional Lock Framework
//! for Multi-level NUMA Systems*, SOSP 2021. Given a set of simple,
//! NUMA-oblivious spinlocks (from [`clof_locks`]) and a *hierarchy
//! configuration* (from [`clof_topology`]) describing the target machine,
//! this crate composes them — one basic lock type per hierarchy level —
//! into multi-level, heterogeneous, NUMA-aware locks, enumerates all
//! `N^M` compositions, benchmarks them, and selects the best for a target
//! contention profile.
//!
//! # The two composition flavours
//!
//! * [`compose`] — **static** composition: `Clof<L, H>` nests lock types
//!   at compile time (Rust generics play the role of the paper's
//!   *syntactic recursion* via C macros — zero virtual dispatch, fully
//!   monomorphized).
//! * [`dynlock`] — **dynamic** composition: [`DynClofLock`] assembles any
//!   composition described by a `&[LockKind]` at run time using enum
//!   dispatch (one `match`, no virtual function pointers). This is what
//!   the exhaustive generator uses: 256 static types would otherwise have
//!   to be monomorphized to benchmark a 4-level hierarchy with 4 basic
//!   locks.
//!
//! Both flavours implement the same protocol (paper Figure 8):
//! `inc_waiters`/`dec_waiters`/`has_waiters` read-indicator (skipped when
//! the basic lock has a native waiter hint), `keep_local` threshold
//! counting, `pass_high_lock`/`clear_high_lock`/`has_high_lock` flag
//! hand-off, and the **release order** (high before low) that the context
//! invariant requires.
//!
//! # Quick start
//!
//! ```
//! use clof::dynlock::DynClofLock;
//! use clof::kind::LockKind;
//! use clof_topology::platforms;
//!
//! // 8-CPU machine: cache pairs inside 2 NUMA quads.
//! let hierarchy = platforms::tiny();
//! // A 3-level heterogeneous CLoF lock: MCS at cache level, CLH at NUMA
//! // level, Ticketlock at system level ("mcs-clh-tkt").
//! let lock = DynClofLock::build(
//!     &hierarchy,
//!     &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
//! )
//! .unwrap();
//! let mut handle = lock.handle(0); // this thread runs on CPU 0
//! handle.acquire();
//! // ... critical section ...
//! handle.release();
//! ```

#![warn(missing_docs)]

#[cfg(feature = "adapt")]
pub mod adapt;
pub mod compose;
pub mod cpu;
pub mod dynlock;
pub mod error;
pub mod fastpath;
pub mod generator;
pub mod kind;
pub mod level;
pub mod mutex;
#[cfg(all(feature = "deadline", feature = "obs"))]
mod deadlineglue;
#[cfg(all(feature = "park", feature = "obs"))]
mod parkglue;
pub mod rwlock;
pub mod select;

#[cfg(feature = "adapt")]
pub use adapt::{AdaptHandle, AdaptiveLock, MigrationStats};
pub use compose::{Clof, ClofHandle, ClofTree, HierLock, Leaf};
pub use dynlock::{DispatchTier, DynClofLock, DynHandle, LevelStats};
pub use error::ClofError;
pub use fastpath::{FastClof, FastClofHandle};
pub use generator::{compositions, composition_name, generate_all, parse_composition};
pub use kind::LockKind;
pub use level::{ClofParams, MAX_WAITER_STRIPES};
pub use mutex::{ClofMutex, ClofMutexGuard, ClofMutexHandle};
pub use rwlock::{ClofRwLock, ClofRwWriter};
pub use select::{rank, scripted_benchmark, BenchResult, CandidateObs, Policy, Selection};

/// Re-export of the telemetry crate (`obs` feature only), so downstream
/// users never need a direct `clof-obs` dependency: snapshots come from
/// [`DynClofLock::obs_snapshot`] / [`ClofTree::obs_snapshot`] and render
/// via [`obs::render_json`] / [`obs::render_prometheus`].
#[cfg(feature = "obs")]
pub use clof_obs as obs;
