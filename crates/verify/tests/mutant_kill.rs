//! Mutant-kill regression suite: the model checker must keep *catching*
//! the known-bad CLoF variants. If a refactor of `checker.rs` or
//! `models.rs` ever makes one of these mutants pass, the checker itself
//! has rotted — these tests turn that silent loss of power into a loud
//! failure.
//!
//! Each test pins down not just "some failure" but the *kind* of failure
//! the paper predicts: the inverted-release mutant must die on the
//! §4.1.3 context invariant specifically, and the unfair-root mutant
//! must die on starvation (Theorem 4.1's caveat), with sane traces.

use clof_verify::models::{clof_model, ClofModelCfg};
use clof_verify::{check, CheckResult};

/// Baseline: the clean induction-step model still verifies. Without this
/// anchor a checker that rejects *everything* would also "kill" the
/// mutants below.
#[test]
fn clean_induction_step_still_passes() {
    let outcome = check(&clof_model(&ClofModelCfg::induction_step()));
    assert_eq!(outcome.result, CheckResult::Ok);
    assert!(outcome.states > 1, "exploration must actually run");
}

/// The §4.1.3 bug: releasing the low lock before the high one lets the
/// successor race the releaser on the shared high-lock context. The
/// checker must report the *context invariant* — not mutual exclusion,
/// not deadlock — with a non-empty counterexample trace.
#[test]
fn inverted_release_mutant_is_killed_by_context_invariant() {
    let mut cfg = ClofModelCfg::induction_step();
    cfg.inverted_release = true;
    let outcome = check(&clof_model(&cfg));
    match outcome.result {
        CheckResult::InvariantViolated { invariant, trace } => {
            assert_eq!(invariant, "context-invariant");
            assert!(
                !trace.is_empty(),
                "counterexample must come with a replayable trace"
            );
        }
        other => panic!("inverted-release mutant escaped: {other:?}"),
    }
}

/// The inverted-release bug is not an artifact of the 2-level induction
/// step: it must also be caught in a deeper composition.
#[test]
fn inverted_release_mutant_is_killed_at_depth_three() {
    let mut cfg = ClofModelCfg::deep(3);
    cfg.inverted_release = true;
    let outcome = check(&clof_model(&cfg));
    assert!(
        matches!(
            outcome.result,
            CheckResult::InvariantViolated { ref invariant, .. }
                if invariant == "context-invariant"
        ),
        "deep inverted-release mutant escaped: {:?}",
        outcome.result
    );
}

/// Theorem 4.1's caveat: an unfair (TTAS-style) system-level lock lets
/// one cohort starve. The looping model must report starvation of some
/// thread — and must *not* misclassify it as deadlock or an invariant.
#[test]
fn unfair_root_mutant_is_killed_by_starvation() {
    let mut cfg = ClofModelCfg::induction_step();
    cfg.unfair_root = true;
    cfg.iterations = 0; // loop forever: starvation analysis needs cycles
    let outcome = check(&clof_model(&cfg));
    match outcome.result {
        CheckResult::Starvation { tid } => {
            assert!(
                tid < cfg.paths.len(),
                "starving thread id {tid} out of range"
            );
        }
        other => panic!("unfair-root mutant escaped: {other:?}"),
    }
}

/// The unfair-root mutant's *terminating* variant stays safe (mutual
/// exclusion holds; unfairness is a liveness bug only). This pins the
/// checker's precision: killing mutants is worthless if it also flags
/// behaviours the paper says are merely unfair, not unsafe.
#[test]
fn unfair_root_mutant_is_safe_when_terminating() {
    let mut cfg = ClofModelCfg::induction_step();
    cfg.unfair_root = true;
    // iterations left at 1: bounded runs always terminate, so the only
    // possible failures would be safety violations — there must be none.
    let outcome = check(&clof_model(&cfg));
    assert_eq!(outcome.result, CheckResult::Ok);
}
