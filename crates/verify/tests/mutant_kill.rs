//! Mutant-kill regression suite: the model checker must keep *catching*
//! the known-bad CLoF variants. If a refactor of `checker.rs` or
//! `models.rs` ever makes one of these mutants pass, the checker itself
//! has rotted — these tests turn that silent loss of power into a loud
//! failure.
//!
//! Each test pins down not just "some failure" but the *kind* of failure
//! the paper predicts: the inverted-release mutant must die on the
//! §4.1.3 context invariant specifically, and the unfair-root mutant
//! must die on starvation (Theorem 4.1's caveat), with sane traces.

use clof_verify::models::{clof_model, ClofModelCfg};
use clof_verify::{check, CheckResult};

/// Baseline: the clean induction-step model still verifies. Without this
/// anchor a checker that rejects *everything* would also "kill" the
/// mutants below.
#[test]
fn clean_induction_step_still_passes() {
    let outcome = check(&clof_model(&ClofModelCfg::induction_step()));
    assert_eq!(outcome.result, CheckResult::Ok);
    assert!(outcome.states > 1, "exploration must actually run");
}

/// The §4.1.3 bug: releasing the low lock before the high one lets the
/// successor race the releaser on the shared high-lock context. The
/// checker must report the *context invariant* — not mutual exclusion,
/// not deadlock — with a non-empty counterexample trace.
#[test]
fn inverted_release_mutant_is_killed_by_context_invariant() {
    let mut cfg = ClofModelCfg::induction_step();
    cfg.inverted_release = true;
    let outcome = check(&clof_model(&cfg));
    match outcome.result {
        CheckResult::InvariantViolated { invariant, trace } => {
            assert_eq!(invariant, "context-invariant");
            assert!(
                !trace.is_empty(),
                "counterexample must come with a replayable trace"
            );
        }
        other => panic!("inverted-release mutant escaped: {other:?}"),
    }
}

/// The inverted-release bug is not an artifact of the 2-level induction
/// step: it must also be caught in a deeper composition.
#[test]
fn inverted_release_mutant_is_killed_at_depth_three() {
    let mut cfg = ClofModelCfg::deep(3);
    cfg.inverted_release = true;
    let outcome = check(&clof_model(&cfg));
    assert!(
        matches!(
            outcome.result,
            CheckResult::InvariantViolated { ref invariant, .. }
                if invariant == "context-invariant"
        ),
        "deep inverted-release mutant escaped: {:?}",
        outcome.result
    );
}

/// Theorem 4.1's caveat: an unfair (TTAS-style) system-level lock lets
/// one cohort starve. The looping model must report starvation of some
/// thread — and must *not* misclassify it as deadlock or an invariant.
#[test]
fn unfair_root_mutant_is_killed_by_starvation() {
    let mut cfg = ClofModelCfg::induction_step();
    cfg.unfair_root = true;
    cfg.iterations = 0; // loop forever: starvation analysis needs cycles
    let outcome = check(&clof_model(&cfg));
    match outcome.result {
        CheckResult::Starvation { tid } => {
            assert!(
                tid < cfg.paths.len(),
                "starving thread id {tid} out of range"
            );
        }
        other => panic!("unfair-root mutant escaped: {other:?}"),
    }
}

/// The unfair-root mutant's *terminating* variant stays safe (mutual
/// exclusion holds; unfairness is a liveness bug only). This pins the
/// checker's precision: killing mutants is worthless if it also flags
/// behaviours the paper says are merely unfair, not unsafe.
#[test]
fn unfair_root_mutant_is_safe_when_terminating() {
    let mut cfg = ClofModelCfg::induction_step();
    cfg.unfair_root = true;
    // iterations left at 1: bounded runs always terminate, so the only
    // possible failures would be safety violations — there must be none.
    let outcome = check(&clof_model(&cfg));
    assert_eq!(outcome.result, CheckResult::Ok);
}

// ---------------------------------------------------------------------
// Handover mutants: the same kill-power argument, applied to the
// *runtime* migration protocol of `clof::adapt`. Each mutant deletes
// one load-bearing step of the epoch/quiescence handover; the stress
// oracle (not the model checker — these are real threads on real locks)
// must catch each one within a 16-seed budget, with the failure class
// the protocol analysis predicts and a replayable seed in the report.
// ---------------------------------------------------------------------

mod handover {
    use std::sync::Arc;

    use clof::adapt::{AdaptiveLock, MigrationMutant};
    use clof::{ClofParams, LockKind};
    use clof_testkit::{fuzz_swap_seeds, seed_batch, StressOptions, SwapPlan, Violation};
    use clof_topology::Hierarchy;

    const SHAPE: &[LockKind] = &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket];
    const PARTNER: &[LockKind] = &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket];

    fn hierarchy() -> Hierarchy {
        clof_testkit::strategies::build_regular(&[2, 4])
    }

    fn opts(label: &str) -> StressOptions {
        StressOptions {
            threads: 4,
            iters: 40,
            label: label.into(),
            ..StressOptions::default()
        }
    }

    fn mutated_lock(hierarchy: &Hierarchy, mutant: MigrationMutant) -> Arc<AdaptiveLock> {
        let lock = Arc::new(
            AdaptiveLock::with_params(hierarchy, SHAPE, ClofParams::default(), true)
                .expect("adaptive lock builds"),
        );
        lock.set_migration_mutant(mutant);
        lock
    }

    fn swap_plan(max_swaps: usize) -> SwapPlan {
        SwapPlan {
            shapes: vec![PARTNER.to_vec(), SHAPE.to_vec()],
            pause_yields: 4,
            max_swaps,
        }
    }

    /// A safety-family violation: the classes a broken mutual-exclusion
    /// hand-off produces (never `UnfairGap`, which chaos can cause on
    /// its own).
    fn is_safety_violation(v: &Violation) -> bool {
        matches!(
            v,
            Violation::MutualExclusion { .. }
                | Violation::TornCounters { .. }
                | Violation::LostUpdates { .. }
                | Violation::ContextInvariant { .. }
        )
    }

    /// Anchor: the unmutated handover passes the identical campaign. A
    /// suite whose oracle rejects every migration would also "kill" the
    /// mutants below, proving nothing.
    #[test]
    fn clean_handover_passes_the_same_campaign() {
        let h = hierarchy();
        let outcome = fuzz_swap_seeds(
            &opts("handover-clean"),
            &seed_batch(0xC1EA_4AD7, 8),
            &swap_plan(0),
            |_seed| mutated_lock(&h, MigrationMutant::None),
            |_seed, tid| tid * h.ncpus() / 4,
        );
        outcome.assert_passed();
        assert!(outcome.total_swaps > 0, "campaign must exercise migrations");
    }

    /// Mutant 1 — skip the quiescence drain: the controller transfers
    /// ownership the instant the epoch flips, while old-generation
    /// threads may still be inside their critical sections. Predicted
    /// kill: a mutual-exclusion-family violation.
    #[test]
    fn skip_drain_mutant_is_killed_by_the_oracle() {
        let h = hierarchy();
        let outcome = fuzz_swap_seeds(
            &opts("handover-skip-drain"),
            &seed_batch(0x5D4A_11AD, 16),
            &swap_plan(0),
            |_seed| mutated_lock(&h, MigrationMutant::SkipDrain),
            |_seed, tid| tid * h.ncpus() / 4,
        );
        let report = outcome
            .failure
            .expect("skipping the drain must be caught within 16 seeds");
        assert!(
            report.violations.iter().any(is_safety_violation),
            "expected a mutual-exclusion-family violation:\n{}",
            report.render()
        );
        assert!(
            report.render().contains("replay with seed 0x"),
            "kill must name a replayable seed"
        );
    }

    /// Mutant 2 — double-arm the hand-off: every old-generation release
    /// during a migration stores the baton unguarded, instead of one
    /// guarded CAS at occupancy zero. The first releaser admits the new
    /// generation while its old-generation peers still hold or re-enter
    /// the outgoing tree. Predicted kill: mutual-exclusion family.
    #[test]
    fn double_arm_mutant_is_killed_by_the_oracle() {
        let h = hierarchy();
        let outcome = fuzz_swap_seeds(
            &opts("handover-double-arm"),
            &seed_batch(0xD0B1_4A2A, 16),
            &swap_plan(0),
            |_seed| mutated_lock(&h, MigrationMutant::DoubleArm),
            |_seed, tid| tid * h.ncpus() / 4,
        );
        let report = outcome
            .failure
            .expect("double-arming the baton must be caught within 16 seeds");
        assert!(
            report.violations.iter().any(is_safety_violation),
            "expected a mutual-exclusion-family violation:\n{}",
            report.render()
        );
        assert!(report.render().contains("replay with seed 0x"));
    }

    /// Mutant 3 — no ownership transfer: the drain completes but nobody
    /// ever moves the baton to the incoming generation, so every new
    /// acquirer wedges. The testkit stall bound converts the wedge into
    /// a panic naming the handover. One swap per seed and a fresh lock
    /// per seed: a wedged lock must not leak into the next run.
    #[test]
    fn no_handoff_mutant_is_killed_by_the_stall_bound() {
        let h = hierarchy();
        let outcome = fuzz_swap_seeds(
            &opts("handover-no-handoff"),
            &seed_batch(0x40AD_0FF0, 2),
            &swap_plan(1),
            |_seed| mutated_lock(&h, MigrationMutant::NoHandoff),
            |_seed, tid| tid * h.ncpus() / 4,
        );
        let report = outcome
            .failure
            .expect("a never-arriving baton must be caught");
        let stalled = report.violations.iter().any(|v| {
            matches!(v, Violation::ThreadPanic { detail, .. }
                if detail.contains("handover stalled"))
        });
        assert!(
            stalled,
            "expected the stall-bound panic naming the handover:\n{}",
            report.render()
        );
        assert!(report.render().contains("replay with seed 0x"));
    }
}
