//! An *operational* MCS lock model: the base step of the induction,
//! checked at the protocol level rather than through the abstract-lock
//! lens.
//!
//! The paper's base step verifies each NUMA-oblivious lock implementation
//! with GenMC/VSync. Here the MCS protocol — tail swap, predecessor
//! linking, the release-time race between "no successor yet" and "tail
//! already moved" — is encoded operationally (pointers as small
//! integers) and explored exhaustively. Two mutants demonstrate the
//! classic MCS pitfalls:
//!
//! * **no-wait release**: releasing without waiting for the successor to
//!   link (`next` still null although the tail moved) loses the wakeup —
//!   found as a deadlock;
//! * **no-CAS release**: setting `tail = null` unconditionally instead of
//!   compare-and-swap orphans a concurrent enqueuer — found as a
//!   deadlock (with more threads it also breaks mutual exclusion).

use std::collections::HashSet;
use std::rc::Rc;

use crate::checker::{Model, State, Step};

/// Which (buggy) variant of the MCS release to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McsVariant {
    /// The correct protocol.
    Correct,
    /// Release signals only if `next` is already linked; otherwise it
    /// just clears the tail with a CAS and, when the CAS fails (a
    /// successor is mid-enqueue), *returns without waiting* — the
    /// successor spins forever.
    NoWaitOnRelease,
    /// Release clears `tail` with a plain store instead of CAS.
    NoCasOnRelease,
}

/// Variable layout:
/// `0` = in_cs, `1` = tail (0 = null, t+1 = thread t's node),
/// then per thread `2 + 2t` = locked flag, `3 + 2t` = next pointer.
const IN_CS: usize = 0;
const TAIL: usize = 1;

fn var_locked(tid: usize) -> usize {
    2 + 2 * tid
}

fn var_next(tid: usize) -> usize {
    3 + 2 * tid
}

/// Builds the operational MCS model for `threads` threads, each
/// acquiring and releasing once.
pub fn mcs_model(threads: usize, variant: McsVariant) -> Model {
    let mut programs = Vec::with_capacity(threads);
    let mut waiting = Vec::with_capacity(threads);
    for _tid in 0..threads {
        let mut steps = Vec::new();
        let mut waits = HashSet::new();

        // pc 0 — init own node + atomic tail swap (the node init is
        // thread-private until the swap publishes it, so fusing them
        // into one atomic step does not hide any interleaving).
        steps.push(Step::simple("swap-tail", move |s: &mut State, t| {
            s.vars[var_locked(t)] = 1;
            s.vars[var_next(t)] = 0;
            s.locals[t][0] = s.vars[TAIL]; // predecessor
            s.vars[TAIL] = t as i64 + 1;
        }));

        // pc 1 — link behind the predecessor, or go straight to the CS.
        steps.push(Step::branching("link-pred", move |s: &mut State, t| {
            let pred = s.locals[t][0];
            if pred == 0 {
                s.pcs[t] = 3; // uncontended: critical section
            } else {
                s.vars[var_next(pred as usize - 1)] = t as i64 + 1;
                s.pcs[t] = 2;
            }
        }));

        // pc 2 — spin until the predecessor grants.
        waits.insert(2);
        steps.push(Step::awaiting(
            "await-grant",
            move |s: &State, t| s.vars[var_locked(t)] == 0,
            |_, _| {},
        ));

        // pc 3/4 — critical section.
        steps.push(Step::simple("cs-enter", |s: &mut State, _| {
            s.vars[IN_CS] += 1;
        }));
        steps.push(Step::simple("cs-exit", |s: &mut State, _| {
            s.vars[IN_CS] -= 1;
        }));

        // pc 5 — release.
        match variant {
            McsVariant::Correct => {
                // One guarded atomic decision: if a successor is linked,
                // grant it; else if we are still the tail, CAS it out;
                // otherwise (tail moved, link pending) stay blocked until
                // the successor links — the real protocol's bounded wait.
                waits.insert(5);
                steps.push(Step {
                    name: "release".to_string(),
                    guard: Rc::new(move |s: &State, t| {
                        s.vars[var_next(t)] != 0 || s.vars[TAIL] == t as i64 + 1
                    }),
                    effect: Rc::new(move |s: &mut State, t| {
                        let next = s.vars[var_next(t)];
                        if next != 0 {
                            s.vars[var_locked(next as usize - 1)] = 0;
                        } else {
                            // Guard guarantees tail == me: CAS succeeds.
                            s.vars[TAIL] = 0;
                        }
                        s.pcs[t] += 1;
                    }),
                });
            }
            McsVariant::NoWaitOnRelease => {
                steps.push(Step::branching("release-nowait", move |s: &mut State, t| {
                    let next = s.vars[var_next(t)];
                    if next != 0 {
                        s.vars[var_locked(next as usize - 1)] = 0;
                    } else if s.vars[TAIL] == t as i64 + 1 {
                        s.vars[TAIL] = 0;
                    }
                    // BUG: tail moved but the successor has not linked —
                    // return anyway, losing the wakeup.
                    s.pcs[t] += 1;
                }));
            }
            McsVariant::NoCasOnRelease => {
                steps.push(Step::branching("release-nocas", move |s: &mut State, t| {
                    let next = s.vars[var_next(t)];
                    if next != 0 {
                        s.vars[var_locked(next as usize - 1)] = 0;
                    } else {
                        // BUG: unconditional store orphans any enqueuer
                        // that already swapped the tail.
                        s.vars[TAIL] = 0;
                    }
                    s.pcs[t] += 1;
                }));
            }
        }

        programs.push(steps);
        waiting.push(waits);
    }

    Model {
        name: format!("mcs-{threads}threads-{variant:?}"),
        threads: programs,
        init_vars: vec![0; 2 + 2 * threads],
        init_locals: vec![vec![0]; threads],
        invariants: vec![(
            "mutual-exclusion".into(),
            Rc::new(|s: &State| s.vars[IN_CS] <= 1),
        )],
        waiting_pcs: waiting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, CheckResult};

    #[test]
    fn correct_mcs_verifies_with_three_threads() {
        // The paper's base-step scale: "the 10 NUMA-oblivious spinlocks
        // in [32] ... require 3 threads".
        let outcome = check(&mcs_model(3, McsVariant::Correct));
        assert_eq!(outcome.result, CheckResult::Ok);
        assert!(outcome.states > 50);
    }

    #[test]
    fn correct_mcs_two_and_four_threads() {
        assert_eq!(check(&mcs_model(2, McsVariant::Correct)).result, CheckResult::Ok);
        let four = check(&mcs_model(4, McsVariant::Correct));
        assert_eq!(four.result, CheckResult::Ok);
        let three = check(&mcs_model(3, McsVariant::Correct));
        // State growth with thread count — the why of the induction trick.
        assert!(four.states > 3 * three.states);
    }

    #[test]
    fn no_wait_release_loses_the_wakeup() {
        let outcome = check(&mcs_model(2, McsVariant::NoWaitOnRelease));
        assert!(
            matches!(outcome.result, CheckResult::Deadlock { .. }),
            "expected deadlock, got {:?}",
            outcome.result
        );
    }

    #[test]
    fn no_cas_release_orphans_an_enqueuer() {
        let outcome = check(&mcs_model(3, McsVariant::NoCasOnRelease));
        assert!(
            !matches!(outcome.result, CheckResult::Ok),
            "mutant must be caught"
        );
    }

    #[test]
    fn deadlock_trace_is_reported() {
        if let CheckResult::Deadlock { trace } =
            check(&mcs_model(2, McsVariant::NoWaitOnRelease)).result
        {
            assert!(trace.iter().any(|s| s.contains("release-nowait")));
        } else {
            panic!("expected deadlock");
        }
    }
}
