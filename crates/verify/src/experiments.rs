//! The model-checking scaling experiment (paper §3.3 and §4.2.3).
//!
//! The paper reports that directly model checking an n-level lock blows
//! up super-exponentially in the number of threads (2-level: ~1 s,
//! 3-level: ~3 min, 4-level: >12 h timeout with GenMC), while CLoF's
//! induction argument only ever needs the 2-level step. This module
//! reproduces that *shape* with our explicit-state checker: state and
//! transition counts per hierarchy depth, against the constant-size
//! induction step.

use crate::checker::{check, CheckResult};
use crate::models::{clof_model, ClofModelCfg};

/// One row of the scaling table.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Hierarchy depth (levels).
    pub levels: usize,
    /// Threads needed (one per leaf cohort plus one).
    pub threads: usize,
    /// States explored.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// Whether the check passed.
    pub ok: bool,
}

/// Checks `deep(levels)` models for `levels` in `1..=max_levels` and
/// returns the scaling table.
///
/// `max_levels = 3` finishes in seconds; `4` is sized to demonstrate the
/// blow-up (minutes) — callers choose how far to push, exactly like the
/// paper's 12-hour timeout did.
pub fn scaling_table(max_levels: usize) -> Vec<ScalingRow> {
    (1..=max_levels)
        .map(|levels| {
            let cfg = ClofModelCfg::deep(levels);
            let threads = cfg.paths.len();
            let outcome = check(&clof_model(&cfg));
            ScalingRow {
                levels,
                threads,
                states: outcome.states,
                transitions: outcome.transitions,
                ok: outcome.result == CheckResult::Ok,
            }
        })
        .collect()
}

/// The induction-step cost: the (constant) size of the only model CLoF
/// ever needs to check, regardless of target hierarchy depth.
pub fn induction_step_cost() -> ScalingRow {
    let cfg = ClofModelCfg::induction_step();
    let threads = cfg.paths.len();
    let outcome = check(&clof_model(&cfg));
    ScalingRow {
        levels: 2,
        threads,
        states: outcome.states,
        transitions: outcome.transitions,
        ok: outcome.result == CheckResult::Ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shows_exponential_growth() {
        let table = scaling_table(3);
        assert_eq!(table.len(), 3);
        assert!(table.iter().all(|r| r.ok));
        assert!(table[1].states > 3 * table[0].states);
        assert!(table[2].states > 3 * table[1].states);
    }

    #[test]
    fn induction_step_is_depth_independent_and_small() {
        let step = induction_step_cost();
        assert!(step.ok);
        let table = scaling_table(3);
        // The whole-lock check at depth 3 already dwarfs the induction
        // step; deeper targets only widen the gap, while the induction
        // step never changes.
        assert!(table[2].states > step.states);
    }
}
