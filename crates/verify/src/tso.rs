//! Store-buffer (TSO-like) litmus checking.
//!
//! The paper's aspect A4: on weak memory models, locks need barriers, and
//! a missing barrier "can easily cause the application to crash, hang, or
//! corrupt data" (§4.2.3). This module demonstrates the point at litmus
//! scale with an operational store-buffer semantics — the x86-TSO shape:
//! every thread's writes go to a private FIFO buffer; loads read the
//! newest buffered value for the location (store forwarding) or, if none,
//! main memory; buffers drain to memory nondeterministically; a `Fence`
//! (or any atomic read-modify-write) drains the executing thread's
//! buffer.
//!
//! It is deliberately *not* an Armv8 model (which would also need load
//! reordering); the checker's job here is to witness that the classic
//! lock idioms break the moment any write/read reordering is allowed, the
//! reason CLoF insists on verified basic locks as its base step.

use std::collections::{HashSet, VecDeque};

/// One instruction of a litmus thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `mem[var] := value` (buffered).
    Store {
        /// Target shared variable.
        var: usize,
        /// Value written.
        value: i64,
    },
    /// `reg := mem[var]` (store-forwarded).
    Load {
        /// Source shared variable.
        var: usize,
        /// Destination register.
        reg: usize,
    },
    /// Drain the thread's store buffer.
    Fence,
    /// Atomic swap: `reg := mem[var]; mem[var] := value` — drains the
    /// buffer first (locked instruction semantics).
    Swap {
        /// Target shared variable.
        var: usize,
        /// Destination register for the old value.
        reg: usize,
        /// Value written.
        value: i64,
    },
    /// Block until `reg == value` (re-evaluating the register is not
    /// meaningful, so litmus programs use `LoadedEq` after a `Load` in a
    /// loop; this variant is for simple conditional continuation).
    AssumeRegEq {
        /// Register compared.
        reg: usize,
        /// Expected value.
        value: i64,
    },
}

/// A litmus test: programs, shared-variable count, register count, and a
/// final-state predicate evaluated on every *terminal* state.
pub struct Litmus {
    /// Test name.
    pub name: String,
    /// One instruction sequence per thread.
    pub threads: Vec<Vec<Inst>>,
    /// Number of shared variables (initialized to 0).
    pub vars: usize,
    /// Number of registers per thread (initialized to 0).
    pub regs: usize,
    /// Forbidden final condition: the test *fails* if some terminal state
    /// satisfies it.
    pub forbidden: fn(&LitmusState) -> bool,
}

/// Machine state during litmus exploration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LitmusState {
    /// Main memory.
    pub mem: Vec<i64>,
    /// Per-thread registers.
    pub regs: Vec<Vec<i64>>,
    /// Per-thread program counters.
    pub pcs: Vec<usize>,
    /// Per-thread store buffers (FIFO of `(var, value)`).
    pub buffers: Vec<VecDeque<(usize, i64)>>,
}

/// Memory model to explore under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryModel {
    /// Sequential consistency: stores hit memory immediately.
    Sc,
    /// Total-store-order-like: per-thread FIFO store buffers.
    Tso,
}

/// Result of exploring a litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusOutcome {
    /// Distinct states visited.
    pub states: usize,
    /// Whether some terminal state satisfied the forbidden predicate.
    pub forbidden_reachable: bool,
}

/// Exhaustively explores `litmus` under `model`.
pub fn explore(litmus: &Litmus, model: MemoryModel) -> LitmusOutcome {
    let init = LitmusState {
        mem: vec![0; litmus.vars],
        regs: vec![vec![0; litmus.regs]; litmus.threads.len()],
        pcs: vec![0; litmus.threads.len()],
        buffers: vec![VecDeque::new(); litmus.threads.len()],
    };
    let mut seen: HashSet<LitmusState> = HashSet::new();
    let mut queue: VecDeque<LitmusState> = VecDeque::new();
    let mut forbidden = false;
    seen.insert(init.clone());
    queue.push_back(init);

    while let Some(state) = queue.pop_front() {
        let mut successors: Vec<LitmusState> = Vec::new();
        let mut terminal = true;
        for tid in 0..litmus.threads.len() {
            // Nondeterministic buffer drain (one entry at a time).
            if model == MemoryModel::Tso {
                if let Some(&(var, value)) = state.buffers[tid].front() {
                    terminal = false;
                    let mut next = state.clone();
                    next.buffers[tid].pop_front();
                    next.mem[var] = value;
                    successors.push(next);
                }
            }
            let pc = state.pcs[tid];
            if pc >= litmus.threads[tid].len() {
                continue;
            }
            let inst = litmus.threads[tid][pc];
            // Some instructions block; handled per case.
            match inst {
                Inst::Store { var, value } => {
                    terminal = false;
                    let mut next = state.clone();
                    match model {
                        MemoryModel::Sc => next.mem[var] = value,
                        MemoryModel::Tso => next.buffers[tid].push_back((var, value)),
                    }
                    next.pcs[tid] += 1;
                    successors.push(next);
                }
                Inst::Load { var, reg } => {
                    terminal = false;
                    let mut next = state.clone();
                    let forwarded = state.buffers[tid]
                        .iter()
                        .rev()
                        .find(|&&(v, _)| v == var)
                        .map(|&(_, val)| val);
                    next.regs[tid][reg] = forwarded.unwrap_or(state.mem[var]);
                    next.pcs[tid] += 1;
                    successors.push(next);
                }
                Inst::Fence => {
                    // Executable only with an empty buffer; draining steps
                    // (generated above) make it eventually enabled.
                    if state.buffers[tid].is_empty() {
                        terminal = false;
                        let mut next = state.clone();
                        next.pcs[tid] += 1;
                        successors.push(next);
                    }
                }
                Inst::Swap { var, reg, value } => {
                    if state.buffers[tid].is_empty() {
                        terminal = false;
                        let mut next = state.clone();
                        next.regs[tid][reg] = state.mem[var];
                        next.mem[var] = value;
                        next.pcs[tid] += 1;
                        successors.push(next);
                    }
                }
                Inst::AssumeRegEq { reg, value } => {
                    if state.regs[tid][reg] == value {
                        terminal = false;
                        let mut next = state.clone();
                        next.pcs[tid] += 1;
                        successors.push(next);
                    } else {
                        // Blocked forever (assume failed): this execution
                        // branch is simply abandoned for this thread, but
                        // the state may still be terminal for the test's
                        // purposes once no thread can move.
                    }
                }
            }
        }
        if terminal && (litmus.forbidden)(&state) {
            forbidden = true;
        }
        for next in successors {
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }

    LitmusOutcome {
        states: seen.len(),
        forbidden_reachable: forbidden,
    }
}

/// The store-buffering litmus (SB): both threads store their flag, then
/// read the other's. `r0 == 0 ∧ r1 == 0` is forbidden under SC but
/// observable under TSO — the Dekker-style mutual exclusion failure.
pub fn store_buffering(with_fences: bool) -> Litmus {
    let thread = |mine: usize, theirs: usize| {
        let mut prog = vec![Inst::Store {
            var: mine,
            value: 1,
        }];
        if with_fences {
            prog.push(Inst::Fence);
        }
        prog.push(Inst::Load {
            var: theirs,
            reg: 0,
        });
        prog
    };
    Litmus {
        name: format!(
            "store-buffering{}",
            if with_fences { "+fences" } else { "" }
        ),
        threads: vec![thread(0, 1), thread(1, 0)],
        vars: 2,
        regs: 1,
        forbidden: |s| {
            s.pcs.iter().enumerate().all(|(_, &pc)| pc >= 2)
                && s.regs[0][0] == 0
                && s.regs[1][0] == 0
        },
    }
}

/// A naive spinlock whose acquire is `load; store` (test-and-set *split
/// in two*, i.e. no atomicity): both threads can enter the critical
/// section even under SC — the baseline sanity check that the explorer
/// finds classic bugs.
pub fn broken_tas_lock() -> Litmus {
    let thread = |_tid: usize| {
        vec![
            Inst::Load { var: 0, reg: 0 },           // read flag
            Inst::AssumeRegEq { reg: 0, value: 0 },  // proceed if free
            Inst::Store { var: 0, value: 1 },        // set flag (too late)
            Inst::Fence,
            // Critical section marker: bump own counter var (1 + tid).
        ]
    };
    let mut t0 = thread(0);
    t0.push(Inst::Store { var: 1, value: 1 });
    t0.push(Inst::Fence);
    let mut t1 = thread(1);
    t1.push(Inst::Store { var: 2, value: 1 });
    t1.push(Inst::Fence);
    Litmus {
        name: "broken-split-tas".into(),
        threads: vec![t0, t1],
        vars: 3,
        regs: 1,
        forbidden: |s| s.mem[1] == 1 && s.mem[2] == 1, // both in CS
    }
}

/// A correct TAS lock using an atomic [`Inst::Swap`]: mutual exclusion
/// holds under both models (only one thread can swap 0 → 1).
pub fn atomic_tas_lock() -> Litmus {
    let thread = |marker: usize| {
        vec![
            Inst::Swap {
                var: 0,
                reg: 0,
                value: 1,
            },
            Inst::AssumeRegEq { reg: 0, value: 0 }, // acquired iff old == 0
            Inst::Store {
                var: marker,
                value: 1,
            },
            Inst::Fence,
        ]
    };
    Litmus {
        name: "atomic-tas".into(),
        threads: vec![thread(1), thread(2)],
        vars: 3,
        regs: 1,
        forbidden: |s| s.mem[1] == 1 && s.mem[2] == 1,
    }
}

/// Message passing (MP): T0 writes data then flag; T1 reads flag then
/// data. Under TSO (FIFO buffers) the stale-data outcome is already
/// forbidden without fences — included to show the explorer does not
/// over-approximate.
pub fn message_passing() -> Litmus {
    Litmus {
        name: "message-passing".into(),
        threads: vec![
            vec![
                Inst::Store { var: 0, value: 1 }, // data
                Inst::Store { var: 1, value: 1 }, // flag
            ],
            vec![
                Inst::Load { var: 1, reg: 0 },
                Inst::AssumeRegEq { reg: 0, value: 1 },
                Inst::Load { var: 0, reg: 1 },
            ],
        ],
        vars: 2,
        regs: 2,
        forbidden: |s| s.pcs[1] >= 3 && s.regs[1][1] == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sb_forbidden_only_under_tso() {
        let sb = store_buffering(false);
        assert!(!explore(&sb, MemoryModel::Sc).forbidden_reachable);
        assert!(explore(&sb, MemoryModel::Tso).forbidden_reachable);
    }

    #[test]
    fn sb_with_fences_is_safe_under_tso() {
        let sb = store_buffering(true);
        assert!(!explore(&sb, MemoryModel::Tso).forbidden_reachable);
    }

    #[test]
    fn split_tas_breaks_even_under_sc() {
        let lock = broken_tas_lock();
        assert!(explore(&lock, MemoryModel::Sc).forbidden_reachable);
    }

    #[test]
    fn atomic_tas_safe_under_both_models() {
        let lock = atomic_tas_lock();
        assert!(!explore(&lock, MemoryModel::Sc).forbidden_reachable);
        assert!(!explore(&lock, MemoryModel::Tso).forbidden_reachable);
    }

    #[test]
    fn message_passing_safe_under_tso() {
        let mp = message_passing();
        assert!(!explore(&mp, MemoryModel::Sc).forbidden_reachable);
        assert!(!explore(&mp, MemoryModel::Tso).forbidden_reachable);
    }

    #[test]
    fn tso_explores_more_states_than_sc() {
        let sb = store_buffering(false);
        let sc = explore(&sb, MemoryModel::Sc);
        let tso = explore(&sb, MemoryModel::Tso);
        assert!(tso.states > sc.states);
    }
}
