//! Explicit-state model checking for the CLoF correctness argument.
//!
//! The paper (§4.2) argues CLoF locks are correct *by construction*: the
//! NUMA-oblivious base locks are model-checked (GenMC + VSync), and one
//! **induction step** — `CLoF(l, L')` where `l` and `L'` are abstract
//! fair locks — is model-checked (TLA+/TLC for mutual exclusion, fairness
//! and the context invariant; GenMC for WMM spinloop termination).
//! Composition then yields correctness at any hierarchy depth, while
//! checking a full 4-level lock directly times out (>12 h in the paper).
//!
//! This crate reproduces that argument's *structure* with a small
//! explicit-state checker:
//!
//! * [`checker`] — BFS state-space exploration over guarded-command
//!   thread programs: safety invariants with counterexample traces,
//!   deadlock detection, and starvation detection via
//!   strongly-connected-component analysis (a thread that waits forever
//!   inside a cycle where it never moves).
//! * [`models`] — the CLoF induction-step model (abstract ticket locks +
//!   the `lockgen` metadata protocol), its **mutants** (inverted release
//!   order ⇒ context-invariant violation; unfair component ⇒ starvation),
//!   and base-step models of the simple locks.
//! * [`tso`] — a store-buffer (TSO-like) litmus mode: the same programs
//!   explored with per-thread write buffers, demonstrating that removing
//!   a lock's acquire/release barriers breaks mutual exclusion on a
//!   weaker-than-SC memory model (the paper's A4 point, at litmus scale).
//! * [`experiments`] — the scaling measurement behind the paper's §3.3 /
//!   §4.2.3 discussion: state counts explode with hierarchy depth, while
//!   the induction step stays small.

#![warn(missing_docs)]

pub mod checker;
pub mod clh_model;
pub mod experiments;
pub mod mcs_model;
pub mod models;
pub mod tso;

pub use checker::{check, CheckResult, Model, Outcome, State, Step};
