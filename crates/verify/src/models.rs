//! Checker models: the CLoF induction step, its mutants, and base steps.
//!
//! [`clof_model`] generates a model of an n-level CLoF lock in which
//! every level lock is an **abstract fair lock** (a ticket pair — the
//! same abstraction the paper's TLA+ model uses, where "acquire/release
//! functions are modeled as single steps" over queues; a ticket pair is
//! the counter form of a queue). The `lockgen` metadata protocol
//! (waiters, `has_high_lock` flag, `keep_local`, high context) is modeled
//! step by step, so the checker verifies exactly the paper's §4.2
//! properties:
//!
//! * **mutual exclusion** — `in_cs ≤ 1`;
//! * **context invariant** — no high-lock context is used by two threads
//!   at once (`ctx_busy ≤ 1`); the *inverted release order* mutant
//!   violates this, as §4.1.3 warns;
//! * **deadlock freedom** — explored exhaustively;
//! * **fairness** — in the looping variant, no reachable cycle starves a
//!   waiting thread; the *unfair root* mutant (TTAS at the system level)
//!   exhibits starvation, the paper's Theorem 4.1 counterexample.
//!
//! The context-invariant bookkeeping brackets each use of a level's high
//! context around the immediately-higher lock operation (acquire ticket +
//! spin, or release), a slight narrowing of the real window (which spans
//! the whole recursive climb) that preserves all the races the mutants
//! exercise.

use std::collections::HashSet;
use std::rc::Rc;

use crate::checker::{Model, State, Step};

/// Configuration of a [`clof_model`].
#[derive(Debug, Clone)]
pub struct ClofModelCfg {
    /// `paths[thread][level]` = cohort of the thread at that level,
    /// innermost level first; the last level must map every thread to
    /// cohort 0 (the system lock).
    pub paths: Vec<Vec<usize>>,
    /// Lock/unlock iterations per thread; `0` = loop forever (enables
    /// starvation analysis; needs bounded counters, which the model
    /// guarantees by wrapping tickets).
    pub iterations: usize,
    /// `keep_local` threshold H (≥ 1).
    pub threshold: i64,
    /// Replace the system-level abstract fair lock with a TTAS-style
    /// unfair lock (Theorem 4.1 mutant).
    pub unfair_root: bool,
    /// Release low before high (the §4.1.3 bug).
    pub inverted_release: bool,
}

impl ClofModelCfg {
    /// The paper's induction step: 2 levels, 3 threads (two sharing a
    /// leaf cohort, one in a second cohort), terminating.
    pub fn induction_step() -> Self {
        ClofModelCfg {
            paths: vec![vec![0, 0], vec![0, 0], vec![1, 0]],
            iterations: 1,
            threshold: 2,
            unfair_root: false,
            inverted_release: false,
        }
    }

    /// A deeper model (for the scaling experiment): binary cohort tree of
    /// the given depth with one thread per leaf cohort plus one extra in
    /// leaf cohort 0.
    pub fn deep(levels: usize) -> Self {
        assert!(levels >= 1);
        let leaf_cohorts = 1usize << (levels - 1);
        let mut paths = Vec::new();
        for leaf in 0..leaf_cohorts {
            paths.push(cohort_path(leaf, levels));
        }
        paths.push(cohort_path(0, levels)); // extra contender in cohort 0
        ClofModelCfg {
            paths,
            iterations: 1,
            threshold: 2,
            unfair_root: false,
            inverted_release: false,
        }
    }
}

/// Path of a leaf cohort through a binary tree of `levels` levels.
fn cohort_path(leaf: usize, levels: usize) -> Vec<usize> {
    (0..levels).map(|k| leaf >> k).collect()
}

/// Per-node shared-variable slots.
const TICKET: usize = 0; // doubles as the TTAS flag for an unfair root
const GRANT: usize = 1;
const WAITERS: usize = 2;
const HIGH_HELD: usize = 3;
const KEEP: usize = 4;
const CTX_BUSY: usize = 5;
const NODE_VARS: usize = 6;

/// Builds the CLoF model for `cfg`.
///
/// # Panics
///
/// Panics on inconsistent configuration (empty, ragged paths, non-single
/// root).
pub fn clof_model(cfg: &ClofModelCfg) -> Model {
    let threads = cfg.paths.len();
    assert!(threads > 0, "at least one thread");
    let depth = cfg.paths[0].len();
    assert!(depth >= 1, "at least one level");
    assert!(
        cfg.paths.iter().all(|p| p.len() == depth),
        "ragged thread paths"
    );
    assert!(
        cfg.paths.iter().all(|p| p[depth - 1] == 0),
        "root level must be a single cohort"
    );
    let threshold = cfg.threshold.max(1);

    // Node arena: level-major.
    let cohorts_at = |k: usize| {
        cfg.paths
            .iter()
            .map(|p| p[k])
            .max()
            .expect("threads > 0")
            + 1
    };
    let mut node_base = Vec::new(); // (level, cohort) -> var base
    let mut var_count = 1; // var 0 = in_cs
    let mut level_bases = Vec::new();
    for k in 0..depth {
        let mut bases = Vec::new();
        for _ in 0..cohorts_at(k) {
            bases.push(var_count);
            var_count += NODE_VARS;
        }
        level_bases.push(bases);
    }
    for k in 0..depth {
        node_base.push(level_bases[k].clone());
    }
    let in_cs = 0usize;
    let modulus = threads as i64 + 1;

    // Program-counter layout (identical for all threads):
    //   a_k = 3k, b_k = 3k+1, c_k = 3k+2          (k = 0..depth)
    //   cs_enter = 3D, cs_exit = 3D+1
    //   r_k = 3D+2+k                               (k = 0..depth)
    //   d_j = 4D+2 + (D-2-j)                       (j = D-2..=0)
    //   end = 4D+2 + (D-1)  [D ≥ 1; empty d-block when D == 1]
    let d = depth;
    let pc_a = |k: usize| 3 * k;
    let pc_cs_enter = 3 * d;
    let _pc_cs_exit = 3 * d + 1;
    let pc_r = |k: usize| 3 * d + 2 + k;
    let pc_d = move |j: usize| 4 * d + 2 + (d - 2 - j);
    let pc_end = 4 * d + 2 + (d - 1);
    let pc_len = pc_end + 1;

    let mut programs = Vec::with_capacity(threads);
    let mut waiting = Vec::with_capacity(threads);

    for path in &cfg.paths {
        let mut steps: Vec<Step> = Vec::with_capacity(pc_len);
        let mut waits: HashSet<usize> = HashSet::new();
        let node = |k: usize| node_base[k][path[k]];

        // Climb: a_k, b_k, c_k per level.
        for k in 0..depth {
            let nb = node(k);
            let is_root = k == depth - 1;
            if is_root && cfg.unfair_root {
                // TTAS root: single guarded grab; b is a no-op.
                waits.insert(pc_a(k));
                steps.push(Step::awaiting(
                    &format!("ttas-grab-L{k}"),
                    move |s: &State, _| s.vars[nb + TICKET] == 0,
                    move |s: &mut State, _| s.vars[nb + TICKET] = 1,
                ));
                steps.push(Step::simple(&format!("nop-L{k}"), |_, _| {}));
            } else {
                steps.push(Step::simple(&format!("enqueue-L{k}"), move |s, tid| {
                    s.vars[nb + WAITERS] += 1;
                    s.locals[tid][k] = s.vars[nb + TICKET];
                    s.vars[nb + TICKET] = (s.vars[nb + TICKET] + 1) % modulus;
                }));
                waits.insert(pc_a(k) + 1);
                steps.push(Step::awaiting(
                    &format!("acquired-L{k}"),
                    move |s: &State, tid| s.vars[nb + GRANT] == s.locals[tid][k],
                    move |s: &mut State, _| s.vars[nb + WAITERS] -= 1,
                ));
            }
            // c_k: high-held short-circuit / climb on.
            let prev_nb = if k > 0 { Some(node(k - 1)) } else { None };
            let next_a = pc_a(k + 1);
            steps.push(Step::branching(&format!("climb-L{k}"), move |s, tid| {
                if let Some(p) = prev_nb {
                    s.vars[p + CTX_BUSY] -= 1;
                }
                if is_root || s.vars[nb + HIGH_HELD] == 1 {
                    s.pcs[tid] = pc_cs_enter;
                } else {
                    s.vars[nb + CTX_BUSY] += 1;
                    s.pcs[tid] = next_a;
                }
            }));
        }

        // Critical section.
        steps.push(Step::simple("cs-enter", move |s, _| s.vars[in_cs] += 1));
        steps.push(Step::simple("cs-exit", move |s, _| s.vars[in_cs] -= 1));

        // Release decisions r_k (k < depth-1), root release r_{D-1}.
        for k in 0..depth {
            let nb = node(k);
            let is_root = k == depth - 1;
            if is_root {
                let unfair = cfg.unfair_root;
                let after = if depth >= 2 { pc_d(depth - 2) } else { pc_end };
                steps.push(Step::branching(&format!("release-L{k}"), move |s, tid| {
                    if unfair {
                        s.vars[nb + TICKET] = 0;
                    } else {
                        s.vars[nb + GRANT] = (s.vars[nb + GRANT] + 1) % modulus;
                    }
                    s.pcs[tid] = after;
                }));
            } else {
                let inverted = cfg.inverted_release;
                let next_r = pc_r(k + 1);
                // After passing at level k, the levels *below* k (where
                // the else-branch was taken) must still be released: fall
                // into the unwind block, not straight to the end. This is
                // exactly the `rel(l)` that follows the recursive
                // `rel(L)` in lockgen — the checker found the deadlock
                // when an earlier version skipped it.
                let after_pass = if k == 0 { pc_end } else { pc_d(k - 1) };
                steps.push(Step::branching(&format!("decide-L{k}"), move |s, tid| {
                    if s.vars[nb + WAITERS] > 0 && s.vars[nb + KEEP] < threshold - 1 {
                        // Pass within the cohort.
                        s.vars[nb + KEEP] += 1;
                        s.vars[nb + HIGH_HELD] = 1;
                        s.vars[nb + GRANT] = (s.vars[nb + GRANT] + 1) % modulus;
                        s.pcs[tid] = after_pass;
                    } else {
                        s.vars[nb + KEEP] = 0;
                        s.vars[nb + HIGH_HELD] = 0;
                        if inverted {
                            // BUG (§4.1.3): release the low lock *before*
                            // the high lock.
                            s.vars[nb + GRANT] = (s.vars[nb + GRANT] + 1) % modulus;
                        }
                        s.vars[nb + CTX_BUSY] += 1;
                        s.pcs[tid] = next_r;
                    }
                }));
            }
        }

        // Downward unwinding d_j: finish releasing each lower level.
        for j in (0..depth.saturating_sub(1)).rev() {
            let nb = node(j);
            let inverted = cfg.inverted_release;
            let after = if j == 0 { pc_end } else { pc_d(j - 1) };
            steps.push(Step::branching(&format!("unwind-L{j}"), move |s, tid| {
                s.vars[nb + CTX_BUSY] -= 1;
                if !inverted {
                    s.vars[nb + GRANT] = (s.vars[nb + GRANT] + 1) % modulus;
                }
                s.pcs[tid] = after;
            }));
        }

        // End of one iteration.
        let iterations = cfg.iterations;
        steps.push(Step::branching("iterate", move |s, tid| {
            if iterations == 0 {
                s.pcs[tid] = 0;
            } else {
                s.locals[tid][d] += 1;
                s.pcs[tid] = if s.locals[tid][d] < iterations as i64 {
                    0
                } else {
                    pc_len
                };
            }
        }));

        debug_assert_eq!(steps.len(), pc_len);
        programs.push(steps);
        waiting.push(waits);
    }

    let ctx_vars: Vec<usize> = (0..depth - 1)
        .flat_map(|k| node_base[k].iter().map(|&b| b + CTX_BUSY).collect::<Vec<_>>())
        .collect();

    Model {
        name: format!(
            "clof-{}level-{}threads{}{}{}",
            depth,
            threads,
            if cfg.unfair_root { "-unfair" } else { "" },
            if cfg.inverted_release { "-buggy" } else { "" },
            if cfg.iterations == 0 { "-loop" } else { "" },
        ),
        threads: programs,
        init_vars: vec![0; var_count],
        init_locals: vec![vec![0; depth + 1]; threads],
        invariants: vec![
            (
                "mutual-exclusion".into(),
                Rc::new(move |s: &State| s.vars[in_cs] <= 1),
            ),
            (
                "context-invariant".into(),
                Rc::new(move |s: &State| ctx_vars.iter().all(|&v| s.vars[v] <= 1)),
            ),
        ],
        waiting_pcs: waiting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, CheckResult};

    #[test]
    fn induction_step_is_correct() {
        // The paper's §4.2 induction step: 2-level CLoF over abstract
        // fair locks, 3 threads.
        let outcome = check(&clof_model(&ClofModelCfg::induction_step()));
        assert_eq!(outcome.result, CheckResult::Ok);
        assert!(outcome.states > 100, "explored {}", outcome.states);
    }

    #[test]
    fn induction_step_with_two_iterations() {
        let mut cfg = ClofModelCfg::induction_step();
        cfg.iterations = 2;
        assert_eq!(check(&clof_model(&cfg)).result, CheckResult::Ok);
    }

    #[test]
    fn looping_induction_step_is_starvation_free() {
        // Unbounded lock/unlock loops; fairness = no cycle starves a
        // waiting thread.
        let mut cfg = ClofModelCfg::induction_step();
        cfg.iterations = 0;
        let outcome = check(&clof_model(&cfg));
        assert_eq!(outcome.result, CheckResult::Ok);
    }

    #[test]
    fn inverted_release_order_violates_context_invariant() {
        // The §4.1.3 bug: releasing low before high lets the successor
        // race the releaser on the shared high-lock context.
        let mut cfg = ClofModelCfg::induction_step();
        cfg.inverted_release = true;
        let outcome = check(&clof_model(&cfg));
        match outcome.result {
            CheckResult::InvariantViolated { invariant, trace } => {
                assert_eq!(invariant, "context-invariant");
                assert!(!trace.is_empty());
            }
            other => panic!("expected context-invariant violation, got {other:?}"),
        }
    }

    #[test]
    fn unfair_root_starves_a_cohort() {
        // Theorem 4.1's caveat: a TTAS system lock lets one cohort starve
        // (detected in the looping model as a no-progress cycle).
        let mut cfg = ClofModelCfg::induction_step();
        cfg.unfair_root = true;
        cfg.iterations = 0;
        let outcome = check(&clof_model(&cfg));
        assert!(
            matches!(outcome.result, CheckResult::Starvation { .. }),
            "expected starvation, got {:?}",
            outcome.result
        );
    }

    #[test]
    fn base_step_single_level_ticket_lock() {
        // Depth 1 degenerates to the abstract ticket lock itself: the
        // base step of the induction.
        let cfg = ClofModelCfg {
            paths: vec![vec![0], vec![0], vec![0]],
            iterations: 1,
            threshold: 2,
            unfair_root: false,
            inverted_release: false,
        };
        assert_eq!(check(&clof_model(&cfg)).result, CheckResult::Ok);
    }

    #[test]
    fn base_step_looping_ticket_is_fair_ttas_is_not() {
        let fair = ClofModelCfg {
            paths: vec![vec![0], vec![0]],
            iterations: 0,
            threshold: 2,
            unfair_root: false,
            inverted_release: false,
        };
        assert_eq!(check(&clof_model(&fair)).result, CheckResult::Ok);
        let unfair = ClofModelCfg {
            unfair_root: true,
            ..fair
        };
        assert!(matches!(
            check(&clof_model(&unfair)).result,
            CheckResult::Starvation { .. }
        ));
    }

    #[test]
    fn three_level_model_is_correct_but_larger() {
        let two = check(&clof_model(&ClofModelCfg::deep(2)));
        let three = check(&clof_model(&ClofModelCfg::deep(3)));
        assert_eq!(two.result, CheckResult::Ok);
        assert_eq!(three.result, CheckResult::Ok);
        // The paper's scaling point: state space grows steeply with
        // depth (threads grow with the cohort tree).
        assert!(
            three.states > 5 * two.states,
            "depth 2: {} states, depth 3: {} states",
            two.states,
            three.states
        );
    }

    #[test]
    fn keep_local_threshold_one_always_releases() {
        let cfg = ClofModelCfg {
            threshold: 1,
            ..ClofModelCfg::induction_step()
        };
        assert_eq!(check(&clof_model(&cfg)).result, CheckResult::Ok);
    }

    #[test]
    #[should_panic(expected = "root level must be a single cohort")]
    fn rejects_split_root() {
        let cfg = ClofModelCfg {
            paths: vec![vec![0, 0], vec![1, 1]],
            iterations: 1,
            threshold: 2,
            unfair_root: false,
            inverted_release: false,
        };
        clof_model(&cfg);
    }
}
