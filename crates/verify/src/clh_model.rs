//! An operational CLH lock model: the second base-step protocol.
//!
//! CLH differs from MCS in the direction of the dependency: a thread
//! spins on its *predecessor's* node and recycles that node for its own
//! next acquisition. The recycling is the classic pitfall: reusing one's
//! **own** node instead of the predecessor's corrupts the queue — the
//! thread re-enqueues a node a successor may still be spinning on, and
//! both can end up in the critical section. The mutant demonstrates it.

use std::collections::HashSet;
use std::rc::Rc;

use crate::checker::{Model, State, Step};

/// Node states: `locked[i] == 1` while node `i`'s current user holds or
/// waits for the lock. Node indices: `0` = the initial dummy, `1 + t` =
/// thread `t`'s initially-owned node.
const IN_CS: usize = 0;
const TAIL: usize = 1; // holds a node index
const LOCKED_BASE: usize = 2;

/// Local registers.
const MY_NODE: usize = 0;
const PRED: usize = 1;
const ITER: usize = 2;

/// Which variant of node recycling to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClhVariant {
    /// Correct: after release, adopt the predecessor's node.
    Correct,
    /// BUG: keep reusing one's own node (no recycling). The node is
    /// re-enqueued while a successor may still spin on it.
    ReuseOwnNode,
}

/// Builds the CLH model: `threads` threads, each acquiring/releasing
/// `iterations` times (≥ 2 needed to expose the recycling bug).
pub fn clh_model(threads: usize, iterations: usize, variant: ClhVariant) -> Model {
    let nodes = threads + 1;
    let mut programs = Vec::with_capacity(threads);
    let mut waiting = Vec::with_capacity(threads);
    for _t in 0..threads {
        let mut steps = Vec::new();
        let mut waits = HashSet::new();

        // pc 0 — set own node locked and atomically swap it into tail.
        steps.push(Step::simple("swap-tail", move |s: &mut State, t| {
            let node = s.locals[t][MY_NODE];
            s.vars[LOCKED_BASE + node as usize] = 1;
            s.locals[t][PRED] = s.vars[TAIL];
            s.vars[TAIL] = node;
        }));

        // pc 1 — spin on the predecessor's node.
        waits.insert(1);
        steps.push(Step::awaiting(
            "await-pred",
            move |s: &State, t| s.vars[LOCKED_BASE + s.locals[t][PRED] as usize] == 0,
            |_, _| {},
        ));

        // pc 2/3 — critical section.
        steps.push(Step::simple("cs-enter", |s: &mut State, _| s.vars[IN_CS] += 1));
        steps.push(Step::simple("cs-exit", |s: &mut State, _| s.vars[IN_CS] -= 1));

        // pc 4 — release: unlock own node, adopt the predecessor's
        // (or, in the mutant, keep one's own).
        let reuse_own = variant == ClhVariant::ReuseOwnNode;
        steps.push(Step::simple("release", move |s: &mut State, t| {
            let node = s.locals[t][MY_NODE];
            s.vars[LOCKED_BASE + node as usize] = 0;
            if !reuse_own {
                s.locals[t][MY_NODE] = s.locals[t][PRED];
            }
        }));

        // pc 5 — iterate.
        steps.push(Step::branching("iterate", move |s: &mut State, t| {
            s.locals[t][ITER] += 1;
            s.pcs[t] = if (s.locals[t][ITER] as usize) < iterations {
                0
            } else {
                6
            };
        }));

        programs.push(steps);
        waiting.push(waits);
    }

    Model {
        name: format!("clh-{threads}threads-{iterations}iters-{variant:?}"),
        threads: programs,
        init_vars: vec![0; LOCKED_BASE + nodes],
        init_locals: (0..threads)
            .map(|t| vec![t as i64 + 1, 0, 0])
            .collect(),
        invariants: vec![(
            "mutual-exclusion".into(),
            Rc::new(|s: &State| s.vars[IN_CS] <= 1),
        )],
        waiting_pcs: waiting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, CheckResult};

    #[test]
    fn correct_clh_three_threads() {
        let outcome = check(&clh_model(3, 2, ClhVariant::Correct));
        assert_eq!(outcome.result, CheckResult::Ok);
        assert!(outcome.states > 100);
    }

    #[test]
    fn correct_clh_single_thread_many_iterations() {
        assert_eq!(
            check(&clh_model(1, 4, ClhVariant::Correct)).result,
            CheckResult::Ok
        );
    }

    #[test]
    fn node_reuse_mutant_is_caught() {
        // Needs ≥ 2 iterations: the bug manifests when a node is
        // re-enqueued while still observed by a successor.
        let outcome = check(&clh_model(2, 2, ClhVariant::ReuseOwnNode));
        assert!(
            !matches!(outcome.result, CheckResult::Ok),
            "recycling bug must be caught, got Ok after {} states",
            outcome.states
        );
    }

    #[test]
    fn single_iteration_hides_the_reuse_bug() {
        // With one acquisition per thread the mutant is indistinguishable
        // — the checker's verdict documents why the model needs loops.
        assert_eq!(
            check(&clh_model(2, 1, ClhVariant::ReuseOwnNode)).result,
            CheckResult::Ok
        );
    }
}
