//! A small explicit-state model checker for guarded-command programs.

use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// A global model state: shared variables, per-thread registers, and
/// per-thread program counters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    /// Shared variables.
    pub vars: Vec<i64>,
    /// Per-thread local registers.
    pub locals: Vec<Vec<i64>>,
    /// Per-thread program counters (`pc == program length` ⇒ done).
    pub pcs: Vec<usize>,
}

/// Guard predicate: may the step fire in this state (for this thread)?
pub type Guard = Rc<dyn Fn(&State, usize) -> bool>;
/// Effect: mutate the state; must set `pcs[tid]` to the next location.
pub type Effect = Rc<dyn Fn(&mut State, usize)>;

/// One atomic step of a thread program.
#[derive(Clone)]
pub struct Step {
    /// Step label for counterexample traces.
    pub name: String,
    /// Enabledness predicate (a blocked step simply does not fire —
    /// blocking models spinning without introducing self-loops).
    pub guard: Guard,
    /// State transformation (must advance or redirect the thread's pc).
    pub effect: Effect,
}

impl Step {
    /// A step that fires unconditionally and advances the pc by one after
    /// running `effect` (the common case).
    pub fn simple(name: &str, effect: impl Fn(&mut State, usize) + 'static) -> Step {
        Step {
            name: name.to_string(),
            guard: Rc::new(|_, _| true),
            effect: Rc::new(move |s, tid| {
                effect(s, tid);
                s.pcs[tid] += 1;
            }),
        }
    }

    /// A guarded step (spin-wait): fires only when `guard` holds, then
    /// runs `effect` and advances the pc.
    pub fn awaiting(
        name: &str,
        guard: impl Fn(&State, usize) -> bool + 'static,
        effect: impl Fn(&mut State, usize) + 'static,
    ) -> Step {
        Step {
            name: name.to_string(),
            guard: Rc::new(guard),
            effect: Rc::new(move |s, tid| {
                effect(s, tid);
                s.pcs[tid] += 1;
            }),
        }
    }

    /// A step whose effect chooses the next pc itself (branch/loop).
    pub fn branching(name: &str, effect: impl Fn(&mut State, usize) + 'static) -> Step {
        Step {
            name: name.to_string(),
            guard: Rc::new(|_, _| true),
            effect: Rc::new(effect),
        }
    }
}

/// A complete model: programs, initial state, invariants, and which pcs
/// count as "waiting" for starvation analysis.
pub struct Model {
    /// Model name for reports.
    pub name: String,
    /// One program per thread.
    pub threads: Vec<Vec<Step>>,
    /// Initial shared variables.
    pub init_vars: Vec<i64>,
    /// Initial registers per thread.
    pub init_locals: Vec<Vec<i64>>,
    /// Safety invariants, checked in every reachable state.
    pub invariants: Vec<(String, Rc<dyn Fn(&State) -> bool>)>,
    /// Per-thread pcs at which the thread is *waiting* (spinning); used
    /// by starvation detection.
    pub waiting_pcs: Vec<HashSet<usize>>,
}

/// What the exploration found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// All reachable states satisfy every property checked.
    Ok,
    /// A safety invariant failed; `trace` is a step-name path from the
    /// initial state.
    InvariantViolated {
        /// Name of the violated invariant.
        invariant: String,
        /// Step names leading to the violating state.
        trace: Vec<String>,
    },
    /// A non-final state with no enabled steps.
    Deadlock {
        /// Step names leading to the deadlocked state.
        trace: Vec<String>,
    },
    /// A thread can wait forever inside a cycle in which it never moves
    /// while others do (starvation under weak fairness).
    Starvation {
        /// The starving thread.
        tid: usize,
    },
}

/// Exploration outcome plus statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Number of distinct states visited.
    pub states: usize,
    /// Number of transitions taken.
    pub transitions: usize,
    /// Verification verdict.
    pub result: CheckResult,
}

/// Exhaustively explores `model` (BFS) and checks all properties.
///
/// Property order on violation: invariants first (reported at the
/// earliest offending state), then deadlock, then starvation.
///
/// # Examples
///
/// Verifying the paper's induction step (§4.2):
///
/// ```
/// use clof_verify::checker::{check, CheckResult};
/// use clof_verify::models::{clof_model, ClofModelCfg};
///
/// let outcome = check(&clof_model(&ClofModelCfg::induction_step()));
/// assert_eq!(outcome.result, CheckResult::Ok);
/// ```
///
/// Catching the inverted-release-order bug (§4.1.3):
///
/// ```
/// use clof_verify::checker::{check, CheckResult};
/// use clof_verify::models::{clof_model, ClofModelCfg};
///
/// let mut cfg = ClofModelCfg::induction_step();
/// cfg.inverted_release = true;
/// assert!(matches!(
///     check(&clof_model(&cfg)).result,
///     CheckResult::InvariantViolated { .. }
/// ));
/// ```
pub fn check(model: &Model) -> Outcome {
    let init = State {
        vars: model.init_vars.clone(),
        locals: model.init_locals.clone(),
        pcs: vec![0; model.threads.len()],
    };

    let mut ids: HashMap<State, usize> = HashMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut parent: Vec<Option<(usize, String)>> = Vec::new();
    let mut edges: Vec<Vec<(usize, usize)>> = Vec::new(); // (to, tid)
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut transitions = 0usize;

    ids.insert(init.clone(), 0);
    states.push(init);
    parent.push(None);
    edges.push(Vec::new());
    queue.push_back(0);

    let trace_to = |parent: &Vec<Option<(usize, String)>>, mut id: usize| -> Vec<String> {
        let mut steps = Vec::new();
        while let Some((p, name)) = &parent[id] {
            steps.push(name.clone());
            id = *p;
        }
        steps.reverse();
        steps
    };

    // Check invariants on the initial state too.
    for (name, inv) in &model.invariants {
        if !inv(&states[0]) {
            return Outcome {
                states: 1,
                transitions: 0,
                result: CheckResult::InvariantViolated {
                    invariant: name.clone(),
                    trace: Vec::new(),
                },
            };
        }
    }

    while let Some(id) = queue.pop_front() {
        let state = states[id].clone();
        let mut any_enabled = false;
        let all_done = state
            .pcs
            .iter()
            .enumerate()
            .all(|(tid, &pc)| pc >= model.threads[tid].len());

        for (tid, program) in model.threads.iter().enumerate() {
            let pc = state.pcs[tid];
            if pc >= program.len() {
                continue;
            }
            let step = &program[pc];
            if !(step.guard)(&state, tid) {
                continue;
            }
            any_enabled = true;
            let mut next = state.clone();
            (step.effect)(&mut next, tid);
            transitions += 1;
            let next_id = match ids.get(&next) {
                Some(&existing) => existing,
                None => {
                    let new_id = states.len();
                    ids.insert(next.clone(), new_id);
                    states.push(next.clone());
                    parent.push(Some((id, format!("T{tid}:{}", step.name))));
                    edges.push(Vec::new());
                    queue.push_back(new_id);
                    for (name, inv) in &model.invariants {
                        if !inv(&states[new_id]) {
                            return Outcome {
                                states: states.len(),
                                transitions,
                                result: CheckResult::InvariantViolated {
                                    invariant: name.clone(),
                                    trace: trace_to(&parent, new_id),
                                },
                            };
                        }
                    }
                    new_id
                }
            };
            edges[id].push((next_id, tid));
        }

        if !any_enabled && !all_done {
            return Outcome {
                states: states.len(),
                transitions,
                result: CheckResult::Deadlock {
                    trace: trace_to(&parent, id),
                },
            };
        }
    }

    // Starvation: find an SCC containing a cycle in which thread `tid`
    // never takes a step although some of its states have `tid` waiting.
    if let Some(tid) = find_starvation(model, &states, &edges) {
        return Outcome {
            states: states.len(),
            transitions,
            result: CheckResult::Starvation { tid },
        };
    }

    Outcome {
        states: states.len(),
        transitions,
        result: CheckResult::Ok,
    }
}

/// Per-thread cycle analysis: thread `t` can starve iff the subgraph
/// restricted to states where `t` is waiting, with `t`'s own transitions
/// removed, contains a cycle in which `t` is *disabled* at least once.
///
/// The disabled-state requirement encodes **weak fairness**: a cycle in
/// which `t` stays continuously enabled but is simply never scheduled
/// (e.g. another cohort looping through a free lock while `t` is already
/// cleared to go) is a scheduler artifact, not lock unfairness. A TTAS
/// lock starves for real: in its deprivation cycles the victim's guard is
/// false whenever the lock is held, which is infinitely often.
fn find_starvation(
    model: &Model,
    states: &[State],
    edges: &[Vec<(usize, usize)>],
) -> Option<usize> {
    let n = states.len();
    for t in 0..model.threads.len() {
        let waiting = |s: usize| {
            let pc = states[s].pcs[t];
            pc < model.threads[t].len() && model.waiting_pcs[t].contains(&pc)
        };
        let disabled = |s: usize| {
            let pc = states[s].pcs[t];
            pc < model.threads[t].len() && !(model.threads[t][pc].guard)(&states[s], t)
        };
        // Build the restricted subgraph (same node ids; filtered edges).
        let sub: Vec<Vec<(usize, usize)>> = (0..n)
            .map(|s| {
                if !waiting(s) {
                    return Vec::new();
                }
                edges[s]
                    .iter()
                    .copied()
                    .filter(|&(to, tid)| tid != t && waiting(to))
                    .collect()
            })
            .collect();
        let sccs = tarjan(n, &sub);
        'component: for component in &sccs {
            let in_scc: HashSet<usize> = component.iter().copied().collect();
            let mut movers: HashSet<usize> = HashSet::new();
            let mut has_cycle = false;
            for &s in component {
                for &(to, tid) in &sub[s] {
                    if in_scc.contains(&to) {
                        has_cycle = true;
                        movers.insert(tid);
                    }
                }
            }
            if !has_cycle || !component.iter().any(|&s| disabled(s)) {
                continue;
            }
            // Weak fairness must hold for *every* thread of the witness
            // run, not just the victim: a non-moving thread whose next
            // step is enabled in every component state would eventually
            // fire in any weakly fair run, so such a cycle is a scheduler
            // artifact. (Non-movers have a constant pc across the
            // component, so "done" and the step looked at are
            // well-defined.)
            for u in 0..model.threads.len() {
                if u == t || movers.contains(&u) {
                    continue;
                }
                let u_done = states[component[0]].pcs[u] >= model.threads[u].len();
                if u_done {
                    continue;
                }
                let u_disabled_somewhere = component.iter().any(|&s| {
                    let pc = states[s].pcs[u];
                    !(model.threads[u][pc].guard)(&states[s], u)
                });
                if !u_disabled_somewhere {
                    continue 'component;
                }
            }
            return Some(t);
        }
    }
    None
}

/// Iterative Tarjan strongly-connected components.
fn tarjan(n: usize, edges: &[Vec<(usize, usize)>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        edge: usize,
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: root, edge: 0 }];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.edge < edges[v].len() {
                let (w, _) = edges[v][frame.edge];
                frame.edge += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(component);
                }
                let done = *frame;
                call.pop();
                if let Some(parent) = call.last() {
                    low[parent.v] = low[parent.v].min(low[done.v]);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads incrementing a shared counter non-atomically
    /// (load; store) — the classic lost-update race. An invariant on the
    /// final value cannot hold.
    fn racy_counter() -> Model {
        let load = Step::simple("load", |s, tid| s.locals[tid][0] = s.vars[0]);
        let store = Step::simple("store", |s, tid| s.vars[0] = s.locals[tid][0] + 1);
        Model {
            name: "racy-counter".into(),
            threads: vec![vec![load.clone(), store.clone()], vec![load, store]],
            init_vars: vec![0],
            init_locals: vec![vec![0], vec![0]],
            invariants: vec![(
                "no-lost-update".into(),
                Rc::new(|s: &State| {
                    // Once both threads finished, the counter must be 2.
                    let done = s.pcs.iter().all(|&pc| pc >= 2);
                    !done || s.vars[0] == 2
                }),
            )],
            waiting_pcs: vec![HashSet::new(), HashSet::new()],
        }
    }

    #[test]
    fn finds_lost_update() {
        let outcome = check(&racy_counter());
        match outcome.result {
            CheckResult::InvariantViolated { invariant, trace } => {
                assert_eq!(invariant, "no-lost-update");
                assert_eq!(trace.len(), 4); // both threads ran fully
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    /// The same counter with an atomic increment step: invariant holds.
    #[test]
    fn atomic_counter_is_ok() {
        let inc = Step::simple("inc", |s, _| s.vars[0] += 1);
        let model = Model {
            name: "atomic-counter".into(),
            threads: vec![vec![inc.clone()], vec![inc]],
            init_vars: vec![0],
            init_locals: vec![vec![], vec![]],
            invariants: vec![(
                "sum".into(),
                Rc::new(|s: &State| {
                    let done = s.pcs.iter().all(|&pc| pc >= 1);
                    !done || s.vars[0] == 2
                }),
            )],
            waiting_pcs: vec![HashSet::new(), HashSet::new()],
        };
        let outcome = check(&model);
        assert_eq!(outcome.result, CheckResult::Ok);
        // States: pcs (0,0),(1,0),(0,1),(1,1) = 4.
        assert_eq!(outcome.states, 4);
    }

    /// Two threads each awaiting a flag only the other can set — but
    /// neither ever sets it: deadlock.
    #[test]
    fn detects_deadlock() {
        let wait = Step::awaiting("wait", |s, _| s.vars[0] == 1, |_, _| {});
        let model = Model {
            name: "deadlock".into(),
            threads: vec![vec![wait.clone()], vec![wait]],
            init_vars: vec![0],
            init_locals: vec![vec![], vec![]],
            invariants: vec![],
            waiting_pcs: vec![HashSet::from([0]), HashSet::from([0])],
        };
        match check(&model).result {
            CheckResult::Deadlock { trace } => assert!(trace.is_empty()),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    /// Thread 1 loops forever; thread 0 waits for a flag thread 1 never
    /// sets: starvation (a cycle in which T0 waits and never moves).
    #[test]
    fn detects_starvation() {
        let waiter = vec![Step::awaiting("await-flag", |s, _| s.vars[0] == 1, |_, _| {})];
        let looper = vec![Step::branching("spin-forever", |s, tid| {
            s.vars[1] = 1 - s.vars[1];
            s.pcs[tid] = 0;
        })];
        let model = Model {
            name: "starvation".into(),
            threads: vec![waiter, looper],
            init_vars: vec![0, 0],
            init_locals: vec![vec![], vec![]],
            invariants: vec![],
            waiting_pcs: vec![HashSet::from([0]), HashSet::new()],
        };
        assert_eq!(check(&model).result, CheckResult::Starvation { tid: 0 });
    }

    #[test]
    fn branching_steps_can_loop_finitely() {
        // One thread counts to 3 via a back-edge.
        let count = Step::branching("count", |s, tid| {
            s.vars[0] += 1;
            s.pcs[tid] = if s.vars[0] < 3 { 0 } else { 1 };
        });
        let model = Model {
            name: "loop".into(),
            threads: vec![vec![count]],
            init_vars: vec![0],
            init_locals: vec![vec![]],
            invariants: vec![("bounded".into(), Rc::new(|s: &State| s.vars[0] <= 3))],
            waiting_pcs: vec![HashSet::new()],
        };
        let outcome = check(&model);
        assert_eq!(outcome.result, CheckResult::Ok);
        assert_eq!(outcome.states, 4); // counter 0..=3
    }
}
