//! State-of-the-art NUMA-aware lock baselines used in the paper's
//! evaluation: HMCS, CNA, and ShflLock.
//!
//! These are the comparison points of Figures 2, 4 and 10:
//!
//! * [`HmcsLock`] — the multi-level HMCS lock of Chabbi, Fagan &
//!   Mellor-Crummey (PPoPP'15): a tree of MCS locks with status-encoded
//!   lock passing and a per-level threshold. Level-*homogeneous* — the
//!   foil for CLoF's heterogeneity.
//! * [`CnaLock`] — Compact NUMA-Aware lock of Dice & Kogan (EuroSys'19):
//!   one MCS-style queue; on release the owner moves waiters from other
//!   NUMA nodes to a secondary queue, preferring same-node hand-offs, and
//!   periodically flushes the secondary queue for long-term fairness.
//!   Two-level only.
//! * [`ShflLock`] — Kashyap et al. (SOSP'19), adapted: a queue lock with
//!   socket-aware shuffling plus a test-and-set top lock as in the
//!   qspinlock-style design. Two-level only.
//!
//! Unlike the originals (x86-targeted, no barriers — the paper reports
//! they "quickly cause hangs or mutual exclusion violations" when run
//! as-is on Armv8), these implementations use explicit acquire/release
//! atomics throughout, i.e. they are written for weak memory models the
//! way the paper's VSync-corrected versions are.

#![warn(missing_docs)]

pub mod cna;
pub mod hmcs;
pub mod shfl;

pub use cna::{CnaHandle, CnaLock};
pub use hmcs::{HmcsHandle, HmcsLock};
pub use shfl::{ShflHandle, ShflLock};
