//! HMCS: a hierarchy of MCS locks (Chabbi, Fagan & Mellor-Crummey,
//! PPoPP'15), with the WMM-safe barriers of the paper's HMCS-WMM study.
//!
//! Each cohort at each level owns an MCS-style queue. A thread enqueues at
//! its leaf; becoming the head of a level's queue makes it the *cohort
//! head*, which climbs by enqueueing the level's own node into the parent
//! level. On release, the owner passes within its level (incrementing a
//! count carried in the successor's `status`) until the per-level
//! threshold is hit, then releases the parent level first and signals the
//! successor to re-climb (`ACQUIRE_PARENT`).
//!
//! The fused status word (spin flag *and* hand-off counter) is what
//! distinguishes HMCS from the equivalent CLoF composition `mcs-mcs-...`.

use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use clof_topology::{CpuId, Hierarchy};

/// Waiting for a predecessor's signal.
const WAIT: u64 = u64::MAX;
/// Signal: "you are the new cohort head; acquire the parent level".
const ACQUIRE_PARENT: u64 = u64::MAX - 1;
/// First hand-off count of a fresh cohort head.
const COHORT_START: u64 = 1;

/// One queue node; `status` doubles as spin flag and pass counter.
#[derive(Debug)]
struct HmcsNode {
    status: AtomicU64,
    next: AtomicPtr<HmcsNode>,
}

impl HmcsNode {
    fn boxed() -> NonNull<HmcsNode> {
        let node = Box::new(HmcsNode {
            status: AtomicU64::new(0),
            next: AtomicPtr::new(ptr::null_mut()),
        });
        NonNull::new(Box::into_raw(node)).expect("Box::into_raw returned null")
    }
}

/// One cohort instance of one level.
struct HmcsLevel {
    tail: AtomicPtr<HmcsNode>,
    threshold: u64,
    parent: Option<Arc<HmcsLevel>>,
    /// Node this cohort uses to enqueue into the parent level. Only the
    /// cohort head touches it; hand-off between heads synchronizes
    /// through this level's queue (same argument as CLoF's high-lock
    /// context invariant).
    pnode: NonNull<HmcsNode>,
}

// SAFETY: All shared fields are atomics; `pnode` is owner-exclusive by
// protocol.
unsafe impl Send for HmcsLevel {}
// SAFETY: As above.
unsafe impl Sync for HmcsLevel {}

impl Drop for HmcsLevel {
    fn drop(&mut self) {
        // SAFETY: The level is being destroyed, so no operation is in
        // flight and the node is not linked anywhere.
        unsafe { drop(Box::from_raw(self.pnode.as_ptr())) };
    }
}

impl HmcsLevel {
    fn new(threshold: u64, parent: Option<Arc<HmcsLevel>>) -> Self {
        HmcsLevel {
            tail: AtomicPtr::new(ptr::null_mut()),
            threshold,
            parent,
            pnode: HmcsNode::boxed(),
        }
    }

    /// Acquires this level (and, if we become cohort head, all parents).
    fn acquire(&self, node: NonNull<HmcsNode>) {
        // SAFETY: `node` is owned by the caller (thread handle or child
        // level) and not currently enqueued.
        let n = unsafe { node.as_ref() };
        n.next.store(ptr::null_mut(), Ordering::Relaxed);
        n.status.store(WAIT, Ordering::Relaxed);
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` stays alive until its owner observes our link
            // (see the MCS argument in `clof-locks`).
            unsafe { (*pred).next.store(node.as_ptr(), Ordering::Release) };
            let mut backoff = clof_locks::Backoff::new();
            let mut status = n.status.load(Ordering::Acquire);
            while status == WAIT {
                backoff.snooze();
                status = n.status.load(Ordering::Acquire);
            }
            if self.parent.is_none() {
                // Root level: any signal is the lock itself.
                return;
            }
            if status != ACQUIRE_PARENT {
                // Lock passed locally; `status` is our hand-off count.
                return;
            }
        }
        // We are the cohort head: climb.
        if let Some(parent) = &self.parent {
            n.status.store(COHORT_START, Ordering::Relaxed);
            parent.acquire(self.pnode);
        }
    }

    /// Releases this level, having already decided `val` for a successor.
    fn release_helper(&self, node: NonNull<HmcsNode>, val: u64) {
        // SAFETY: Caller owns `node` (it is this level's queue head).
        let n = unsafe { node.as_ref() };
        let mut succ = n.next.load(Ordering::Acquire);
        if succ.is_null() {
            if self
                .tail
                .compare_exchange(
                    node.as_ptr(),
                    ptr::null_mut(),
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
            let mut backoff = clof_locks::Backoff::new();
            loop {
                succ = n.next.load(Ordering::Acquire);
                if !succ.is_null() {
                    break;
                }
                backoff.snooze();
            }
        }
        // SAFETY: The successor is alive: it is spinning on its node.
        unsafe { (*succ).status.store(val, Ordering::Release) };
    }

    /// Full release from this level upward.
    fn release(&self, node: NonNull<HmcsNode>) {
        let Some(parent) = &self.parent else {
            // Root: plain MCS hand-off (0 = "granted" for the root spin).
            self.release_helper(node, 0);
            return;
        };
        // SAFETY: Caller owns `node`.
        let n = unsafe { node.as_ref() };
        let cur_count = n.status.load(Ordering::Relaxed);
        if cur_count < self.threshold {
            let succ = n.next.load(Ordering::Acquire);
            if !succ.is_null() {
                // Local pass: successor inherits the parent lock and the
                // incremented count.
                // SAFETY: Successor is spinning on its node.
                unsafe { (*succ).status.store(cur_count + 1, Ordering::Release) };
                return;
            }
        }
        // Threshold reached or no local successor: release the parent
        // first (release order, as in CLoF §4.1.3), then hand the level
        // to any successor with the re-climb signal.
        parent.release(self.pnode);
        self.release_helper(node, ACQUIRE_PARENT);
    }
}

/// The multi-level HMCS lock.
///
/// # Examples
///
/// ```
/// use clof_baselines::HmcsLock;
/// use clof_topology::platforms;
///
/// let lock = HmcsLock::new(&platforms::tiny(), 128);
/// let mut handle = lock.handle(0);
/// handle.acquire();
/// handle.release();
/// ```
pub struct HmcsLock {
    leaves: Vec<Arc<HmcsLevel>>,
    cpu_to_leaf: Vec<usize>,
    levels: usize,
}

impl HmcsLock {
    /// Builds an HMCS tree mirroring `hierarchy`, with the given
    /// per-level hand-off threshold (the paper and HMCS default: 128;
    /// 2 levels gives the HMCS⟨2⟩ configuration of the CNA/ShflLock
    /// papers, 4 levels the HMCS⟨4⟩ of Figure 2).
    pub fn new(hierarchy: &Hierarchy, threshold: u64) -> Self {
        let levels = hierarchy.level_count();
        let mut upper: Vec<Arc<HmcsLevel>> =
            vec![Arc::new(HmcsLevel::new(threshold, None))];
        for level in (0..levels.saturating_sub(1)).rev() {
            let mut nodes = Vec::with_capacity(hierarchy.cohort_count(level));
            for cohort in 0..hierarchy.cohort_count(level) {
                let cpu = hierarchy.cohort_members(level, cohort)[0];
                let parent_cohort = hierarchy.cohort(level + 1, cpu);
                nodes.push(Arc::new(HmcsLevel::new(
                    threshold,
                    Some(Arc::clone(&upper[parent_cohort])),
                )));
            }
            upper = nodes;
        }
        let cpu_to_leaf = (0..hierarchy.ncpus())
            .map(|c| {
                if levels == 1 {
                    0
                } else {
                    hierarchy.cohort(0, c)
                }
            })
            .collect();
        HmcsLock {
            leaves: upper,
            cpu_to_leaf,
            levels,
        }
    }

    /// A per-thread handle entering at `cpu`'s leaf cohort.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for the hierarchy.
    pub fn handle(&self, cpu: CpuId) -> HmcsHandle {
        HmcsHandle {
            leaf: Arc::clone(&self.leaves[self.cpu_to_leaf[cpu]]),
            node: HmcsNode::boxed(),
        }
    }

    /// Number of levels (including the system level).
    pub fn levels(&self) -> usize {
        self.levels
    }
}

impl std::fmt::Debug for HmcsLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HmcsLock<{}>", self.levels)
    }
}

/// Per-thread HMCS handle (leaf cohort + the thread's queue node).
pub struct HmcsHandle {
    leaf: Arc<HmcsLevel>,
    node: NonNull<HmcsNode>,
}

// SAFETY: The node is heap-allocated; shared fields are atomics.
unsafe impl Send for HmcsHandle {}

impl HmcsHandle {
    /// Acquires the lock.
    pub fn acquire(&mut self) {
        self.leaf.acquire(self.node);
    }

    /// Releases the lock.
    ///
    /// Must only be called while held through this handle.
    pub fn release(&mut self) {
        self.leaf.release(self.node);
    }
}

impl Drop for HmcsHandle {
    fn drop(&mut self) {
        // SAFETY: Handles are dropped only when idle (not enqueued).
        unsafe { drop(Box::from_raw(self.node.as_ptr())) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;
    use std::sync::atomic::AtomicUsize;

    fn hammer(lock: &Arc<HmcsLock>, cpus: &[usize], iters: usize) -> usize {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for &cpu in cpus {
            let lock = Arc::clone(lock);
            let counter = Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                for _ in 0..iters {
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn single_thread_roundtrip() {
        let lock = HmcsLock::new(&platforms::tiny(), 128);
        let mut handle = lock.handle(0);
        for _ in 0..500 {
            handle.acquire();
            handle.release();
        }
    }

    #[test]
    fn mutual_exclusion_tiny_all_cpus() {
        let lock = Arc::new(HmcsLock::new(&platforms::tiny(), 128));
        let cpus: Vec<usize> = (0..8).collect();
        assert_eq!(hammer(&lock, &cpus, 1000), 8000);
    }

    #[test]
    fn mutual_exclusion_small_threshold() {
        // Threshold 1: every release climbs; stresses the re-climb path.
        let lock = Arc::new(HmcsLock::new(&platforms::tiny(), 1));
        assert_eq!(hammer(&lock, &[0, 1, 4, 5], 800), 3200);
    }

    #[test]
    fn mutual_exclusion_on_paper_armv8_4level() {
        let lock = Arc::new(HmcsLock::new(&platforms::paper_armv8_4level(), 128));
        let cpus = [0usize, 1, 5, 33, 64, 127];
        assert_eq!(hammer(&lock, &cpus, 400), 2400);
    }

    #[test]
    fn two_level_hmcs2_configuration() {
        let lock = Arc::new(HmcsLock::new(&platforms::two_level(8, 2), 128));
        assert_eq!(lock.levels(), 2);
        assert_eq!(hammer(&lock, &[0, 3, 4, 7], 800), 3200);
    }

    #[test]
    fn flat_hierarchy_degenerates_to_mcs() {
        let h = clof_topology::Hierarchy::flat(4).unwrap();
        let lock = Arc::new(HmcsLock::new(&h, 128));
        assert_eq!(lock.levels(), 1);
        assert_eq!(hammer(&lock, &[0, 1, 2, 3], 1000), 4000);
    }

    #[test]
    fn handle_reuse_many_rounds() {
        let lock = HmcsLock::new(&platforms::tiny(), 4);
        let mut handle = lock.handle(7);
        for _ in 0..2000 {
            handle.acquire();
            handle.release();
        }
    }
}
