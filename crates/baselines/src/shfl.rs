//! ShflLock (Kashyap et al., SOSP'19), adapted.
//!
//! The original ShflLock is a qspinlock-style design: a test-and-set
//! *top* lock guards the critical section; waiters form an MCS-style
//! queue whose head spins on the top lock, and a designated waiter (the
//! *shuffler*) reorders the queue so same-socket waiters sit together.
//!
//! As in the original, shuffling is waiter-side: the queue head, while it
//! spins on the top lock, walks its successor chain and moves same-socket
//! waiters to the front, so consecutive owners tend to share a socket.
//! Chain surgery is single-writer (only the head shuffles; enqueuers only
//! write the last node's `next`), with the same "never touch a node whose
//! `next` is still null" rule as our CNA.
//!
//! Adaptation notes (divergences documented per `DESIGN.md`):
//!
//! * One shuffler role (the queue head); the original can delegate the
//!   role down the queue to overlap more work.
//! * A deterministic fairness budget (`FAIRNESS_THRESHOLD` shuffles)
//!   instead of the original's probabilistic one.
//! * Explicit orderings throughout (WMM-safe), like our CNA.
//!
//! Structurally this shares the queue machinery with
//! [`CnaLock`](crate::CnaLock); the observable difference is the
//! test-and-set fast path, which favours low-contention latency (and is
//! why ShflLock, like CNA, tracks MCS rather than beating it below one
//! NUMA node — paper Figure 4).

use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, Ordering};
use std::sync::Arc;

use clof_locks::Backoff;
use clof_topology::{CpuId, Hierarchy};

/// Same-socket hand-offs before a fairness flush (original uses a
/// probabilistic budget; deterministic here).
const FAIRNESS_THRESHOLD: u32 = 256;
/// Maximum waiters inspected per shuffle batch.
const SHUFFLE_BATCH: usize = 16;

#[derive(Debug)]
struct ShflNode {
    /// 0 = wait, 1 = "you are the queue head, go take the top lock".
    spin: AtomicU32,
    numa: u32,
    next: AtomicPtr<ShflNode>,
}

impl ShflNode {
    fn boxed(numa: u32) -> NonNull<ShflNode> {
        let node = Box::new(ShflNode {
            spin: AtomicU32::new(0),
            numa,
            next: AtomicPtr::new(ptr::null_mut()),
        });
        NonNull::new(Box::into_raw(node)).expect("Box::into_raw returned null")
    }
}

/// The adapted ShflLock.
///
/// # Examples
///
/// ```
/// use clof_baselines::ShflLock;
/// use clof_topology::platforms;
///
/// let lock = std::sync::Arc::new(ShflLock::new(&platforms::two_level(8, 2)));
/// let mut handle = lock.handle(0);
/// handle.acquire();
/// handle.release();
/// ```
pub struct ShflLock {
    /// Test-and-set top lock actually guarding the critical section.
    top: AtomicBool,
    /// MCS-style waiting queue.
    tail: AtomicPtr<ShflNode>,
    /// Same-socket streak counter (owner-exclusive; transfers with the
    /// top lock's release/acquire edge).
    streak: AtomicU32,
    /// Socket of the last owner (for the shuffle policy).
    last_numa: AtomicU32,
    numa_of: Vec<u32>,
}

impl ShflLock {
    /// Creates a ShflLock for `hierarchy` (socket map as in
    /// [`CnaLock::new`](crate::CnaLock::new)).
    pub fn new(hierarchy: &Hierarchy) -> Self {
        let level = hierarchy
            .levels()
            .iter()
            .position(|l| l.name == "numa")
            .unwrap_or_else(|| hierarchy.level_count().saturating_sub(2));
        let numa_of = (0..hierarchy.ncpus())
            .map(|c| hierarchy.cohort(level, c) as u32)
            .collect();
        ShflLock {
            top: AtomicBool::new(false),
            tail: AtomicPtr::new(ptr::null_mut()),
            streak: AtomicU32::new(0),
            last_numa: AtomicU32::new(0),
            numa_of,
        }
    }

    /// A per-thread handle for a thread running on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn handle(self: &Arc<Self>, cpu: CpuId) -> ShflHandle {
        ShflHandle {
            lock: Arc::clone(self),
            node: ShflNode::boxed(self.numa_of[cpu]),
        }
    }

    fn try_top(&self) -> bool {
        !self.top.load(Ordering::Relaxed) && !self.top.swap(true, Ordering::Acquire)
    }

    fn acquire(&self, node: NonNull<ShflNode>) {
        // Fast path: uncontended test-and-set.
        if self.try_top() {
            return;
        }
        // Slow path: enqueue.
        // SAFETY: Caller owns the idle node.
        let n = unsafe { node.as_ref() };
        n.next.store(ptr::null_mut(), Ordering::Relaxed);
        n.spin.store(0, Ordering::Relaxed);
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: Predecessor is alive until it observes our link.
            unsafe { (*pred).next.store(node.as_ptr(), Ordering::Release) };
            let mut backoff = Backoff::new();
            while n.spin.load(Ordering::Acquire) == 0 {
                backoff.snooze();
            }
        }
        // We are the queue head: spin on the top lock, shuffling our
        // successor chain while we wait (the shuffler role).
        let mut backoff = Backoff::new();
        let mut spins = 0u32;
        while !self.try_top() {
            spins += 1;
            if spins % 8 == 0 {
                self.shuffle_as_head(node);
            }
            backoff.snooze();
        }
        // Leave the queue: hand headship to our successor, or empty it.
        let next = n.next.load(Ordering::Acquire);
        if next.is_null() {
            if self
                .tail
                .compare_exchange(
                    node.as_ptr(),
                    ptr::null_mut(),
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
            // A successor is linking; wait and pass headship.
            let mut backoff = Backoff::new();
            loop {
                let next = n.next.load(Ordering::Acquire);
                if !next.is_null() {
                    // SAFETY: Successor is a waiting thread's node.
                    unsafe { (*next).spin.store(1, Ordering::Release) };
                    return;
                }
                backoff.snooze();
            }
        }
        // SAFETY: Successor is a waiting thread's node.
        unsafe { (*next).spin.store(1, Ordering::Release) };
    }

    fn release(&self, node: NonNull<ShflNode>) {
        // SAFETY: Node alive; used only for its socket id.
        let my_numa = unsafe { node.as_ref() }.numa;
        self.last_numa.store(my_numa, Ordering::Relaxed);
        self.top.store(false, Ordering::Release);
    }

    /// Shuffler: as queue head, pull the first same-socket waiter within
    /// the batch window to the front of our successor chain.
    ///
    /// Single-writer surgery: only the queue head rewrites interior
    /// `next` pointers; enqueuers only write the last node's `next` (and
    /// never again once it is non-null), so every node whose `next` was
    /// observed non-null is safely relinkable.
    fn shuffle_as_head(&self, node: NonNull<ShflNode>) {
        // Fairness budget: stop grouping after a streak, let FIFO order
        // through, then resume.
        let streak = self.streak.load(Ordering::Relaxed);
        if streak >= FAIRNESS_THRESHOLD {
            self.streak.store(0, Ordering::Relaxed);
            return;
        }
        // SAFETY: Our own node.
        let n = unsafe { node.as_ref() };
        let my_numa = n.numa;
        let first = n.next.load(Ordering::Acquire);
        if first.is_null() {
            return;
        }
        // SAFETY: A linked successor stays alive while it spins.
        if unsafe { (*first).numa } == my_numa {
            return; // Already socket-sorted at the front.
        }
        let mut prev = first;
        // SAFETY: As above.
        let mut cursor = unsafe { (*prev).next.load(Ordering::Acquire) };
        for _ in 0..SHUFFLE_BATCH {
            if cursor.is_null() {
                return;
            }
            // SAFETY: Linked node, alive while spinning.
            let cur = unsafe { &*cursor };
            let next = cur.next.load(Ordering::Acquire);
            if cur.numa == my_numa {
                if next.is_null() {
                    // Unmovable last node; give up this round.
                    return;
                }
                // Detach `cur` and reinsert directly behind us.
                // SAFETY: `prev` and `cur` are interior nodes we may
                // relink per the single-writer rule.
                unsafe {
                    (*prev).next.store(next, Ordering::Relaxed);
                    cur.next.store(first, Ordering::Relaxed);
                }
                n.next.store(cursor, Ordering::Release);
                self.streak.fetch_add(1, Ordering::Relaxed);
                return;
            }
            prev = cursor;
            cursor = next;
        }
    }
}

impl std::fmt::Debug for ShflLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShflLock({} cpus)", self.numa_of.len())
    }
}

/// Per-thread ShflLock handle.
pub struct ShflHandle {
    lock: Arc<ShflLock>,
    node: NonNull<ShflNode>,
}

// SAFETY: Node is heap-allocated with atomic shared fields.
unsafe impl Send for ShflHandle {}

impl ShflHandle {
    /// Acquires the lock.
    pub fn acquire(&mut self) {
        self.lock.acquire(self.node);
    }

    /// Releases the lock.
    ///
    /// Must only be called while held through this handle.
    pub fn release(&mut self) {
        self.lock.release(self.node);
    }
}

impl Drop for ShflHandle {
    fn drop(&mut self) {
        // SAFETY: Handles are dropped only when idle (not enqueued).
        unsafe { drop(Box::from_raw(self.node.as_ptr())) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;
    use std::sync::atomic::AtomicUsize;

    fn hammer(lock: &Arc<ShflLock>, cpus: &[usize], iters: usize) -> usize {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for &cpu in cpus {
            let lock = Arc::clone(lock);
            let counter = Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                for _ in 0..iters {
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn single_thread_roundtrip_uses_fast_path() {
        let lock = Arc::new(ShflLock::new(&platforms::two_level(8, 2)));
        let mut handle = lock.handle(0);
        for _ in 0..1000 {
            handle.acquire();
            handle.release();
        }
    }

    #[test]
    fn mutual_exclusion_same_socket() {
        let lock = Arc::new(ShflLock::new(&platforms::two_level(8, 2)));
        assert_eq!(hammer(&lock, &[0, 1, 2, 3], 1500), 6000);
    }

    #[test]
    fn mutual_exclusion_cross_socket() {
        let lock = Arc::new(ShflLock::new(&platforms::two_level(8, 2)));
        assert_eq!(hammer(&lock, &[0, 4, 1, 5], 1500), 6000);
    }

    #[test]
    fn mutual_exclusion_on_paper_armv8() {
        let lock = Arc::new(ShflLock::new(&platforms::paper_armv8()));
        let cpus = [0usize, 32, 64, 96, 1, 33];
        assert_eq!(hammer(&lock, &cpus, 800), 4800);
    }
}
