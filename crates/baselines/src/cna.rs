//! CNA: Compact NUMA-Aware lock (Dice & Kogan, EuroSys'19).
//!
//! An MCS-style queue lock with a twist: on release, the owner scans the
//! main queue for the first waiter on its own NUMA node, moving skipped
//! (remote) waiters to a *secondary queue*; the lock is passed
//! preferentially within the node. Every `FLUSH_THRESHOLD` local
//! hand-offs the secondary queue is flushed to the front of the main
//! queue, bounding unfairness.
//!
//! Implementation notes (documented divergences from the original):
//!
//! * The secondary-queue head/tail and the flush counter live in the lock
//!   (owner-exclusive cells handed over with ownership) rather than being
//!   threaded through the spin words — semantically identical, simpler,
//!   at the cost of one extra cache line touched by the owner.
//! * The original flushes probabilistically (a cheap PRNG); we use a
//!   deterministic counter, which makes tests and fairness accounting
//!   reproducible.
//! * Explicit acquire/release orderings throughout: the published x86
//!   code has no barriers and, as the paper notes (§3.3), hangs on Armv8
//!   unless VSync-style barriers are added.

use std::cell::UnsafeCell;
use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::Arc;

use clof_locks::Backoff;
use clof_topology::{CpuId, Hierarchy};

/// Hand-offs within one NUMA node before the secondary queue is flushed.
const FLUSH_THRESHOLD: u32 = 256;

/// Queue node. `spin == 0` means wait; `spin == 1` means lock granted.
#[derive(Debug)]
struct CnaNode {
    spin: AtomicU32,
    numa: u32,
    next: AtomicPtr<CnaNode>,
}

impl CnaNode {
    fn boxed(numa: u32) -> NonNull<CnaNode> {
        let node = Box::new(CnaNode {
            spin: AtomicU32::new(0),
            numa,
            next: AtomicPtr::new(ptr::null_mut()),
        });
        NonNull::new(Box::into_raw(node)).expect("Box::into_raw returned null")
    }
}

/// Owner-exclusive release state, handed from owner to owner through the
/// lock's release→acquire edge.
#[derive(Debug)]
struct OwnerState {
    sec_head: *mut CnaNode,
    sec_tail: *mut CnaNode,
    local_passes: u32,
}

/// The CNA lock.
///
/// # Examples
///
/// ```
/// use clof_baselines::CnaLock;
/// use clof_topology::platforms;
///
/// let lock = std::sync::Arc::new(CnaLock::new(&platforms::two_level(8, 2)));
/// let mut handle = lock.handle(0);
/// handle.acquire();
/// handle.release();
/// ```
pub struct CnaLock {
    tail: AtomicPtr<CnaNode>,
    owner: UnsafeCell<OwnerState>,
    numa_of: Vec<u32>,
}

// SAFETY: `owner` is only accessed by the lock holder; hand-off
// synchronizes through the queue's release/acquire edges.
unsafe impl Send for CnaLock {}
// SAFETY: As above; everything else is atomic or immutable.
unsafe impl Sync for CnaLock {}

impl CnaLock {
    /// Creates a CNA lock for `hierarchy`, using its `numa` level (or the
    /// outermost non-system level) as the socket map — CNA is strictly
    /// two-level (paper Table 1: no A1).
    pub fn new(hierarchy: &Hierarchy) -> Self {
        let level = hierarchy
            .levels()
            .iter()
            .position(|l| l.name == "numa")
            .unwrap_or_else(|| hierarchy.level_count().saturating_sub(2));
        let numa_of = (0..hierarchy.ncpus())
            .map(|c| hierarchy.cohort(level, c) as u32)
            .collect();
        CnaLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            owner: UnsafeCell::new(OwnerState {
                sec_head: ptr::null_mut(),
                sec_tail: ptr::null_mut(),
                local_passes: 0,
            }),
            numa_of,
        }
    }

    /// A per-thread handle for a thread running on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn handle(self: &Arc<Self>, cpu: CpuId) -> CnaHandle {
        let numa = self.numa_of[cpu];
        CnaHandle {
            lock: Arc::clone(self),
            node: CnaNode::boxed(numa),
        }
    }

    fn acquire(&self, node: NonNull<CnaNode>) {
        // SAFETY: Caller owns the (idle) node.
        let n = unsafe { node.as_ref() };
        n.next.store(ptr::null_mut(), Ordering::Relaxed);
        n.spin.store(0, Ordering::Relaxed);
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        if pred.is_null() {
            return;
        }
        // SAFETY: Predecessor is alive until it observes our link.
        unsafe { (*pred).next.store(node.as_ptr(), Ordering::Release) };
        let mut backoff = Backoff::new();
        while n.spin.load(Ordering::Acquire) == 0 {
            backoff.snooze();
        }
    }

    fn release(&self, node: NonNull<CnaNode>) {
        // SAFETY: We hold the lock; `owner` is ours until we pass it on.
        let state = unsafe { &mut *self.owner.get() };
        // SAFETY: Our node is the queue head.
        let n = unsafe { node.as_ref() };

        let must_flush = state.local_passes >= FLUSH_THRESHOLD;
        let first = self.wait_for_successor_or_uncontended(node);
        match first {
            None => {
                // Fully handled inside `wait_for_successor_or_uncontended`:
                // either the tail CAS released an uncontended lock (empty
                // secondary queue), or the secondary chain was atomically
                // re-installed as the main queue and its head granted.
            }
            Some(first) => {
                if must_flush && !state.sec_head.is_null() {
                    // Fairness flush: prepend the secondary chain to the
                    // main queue and grant its head.
                    let head = state.sec_head;
                    let tail_node = state.sec_tail;
                    state.sec_head = ptr::null_mut();
                    state.sec_tail = ptr::null_mut();
                    state.local_passes = 0;
                    // SAFETY: We exclusively own detached secondary nodes.
                    unsafe { (*tail_node).next.store(first.as_ptr(), Ordering::Relaxed) };
                    // SAFETY: Head is a waiting thread's node.
                    unsafe { (*head).spin.store(1, Ordering::Release) };
                    return;
                }
                // Scan for the first same-NUMA waiter, deferring remote
                // ones. The last queue node (observed `next == null`) is
                // never detached: its `next` may still be written by a
                // future enqueuer.
                let my_numa = n.numa;
                let mut cursor = first.as_ptr();
                loop {
                    // SAFETY: Queue nodes are alive while enqueued.
                    let cur = unsafe { &*cursor };
                    let next = cur.next.load(Ordering::Acquire);
                    if cur.numa == my_numa {
                        state.local_passes += 1;
                        cur.spin.store(1, Ordering::Release);
                        return;
                    }
                    if next.is_null() {
                        // Unmovable last node: grant it (remote hand-off)
                        // after flushing any deferred locals... deferred
                        // nodes are remote too, so prefer the oldest: the
                        // secondary head if present, spliced before the
                        // last node.
                        if state.sec_head.is_null() {
                            cur.spin.store(1, Ordering::Release);
                        } else {
                            let head = state.sec_head;
                            let tail_node = state.sec_tail;
                            state.sec_head = ptr::null_mut();
                            state.sec_tail = ptr::null_mut();
                            // SAFETY: Detached secondary nodes are ours.
                            unsafe { (*tail_node).next.store(cursor, Ordering::Relaxed) };
                            // SAFETY: Waiting thread's node.
                            unsafe { (*head).spin.store(1, Ordering::Release) };
                        }
                        state.local_passes = 0;
                        return;
                    }
                    // Defer `cur` to the secondary queue (it has a linked
                    // successor, so its `next` is stable and rewritable).
                    cur.next.store(ptr::null_mut(), Ordering::Relaxed);
                    if state.sec_head.is_null() {
                        state.sec_head = cursor;
                        state.sec_tail = cursor;
                    } else {
                        // SAFETY: Secondary tail is a detached node we own.
                        unsafe {
                            (*state.sec_tail).next.store(cursor, Ordering::Relaxed);
                        }
                        state.sec_tail = cursor;
                    }
                    cursor = next;
                }
            }
        }
    }

    /// Returns the first waiter, or `None` after fully releasing an
    /// uncontended lock (tail CAS to null) — but only when no deferred
    /// waiters exist; with a non-empty secondary queue it *keeps* the
    /// logical lock and returns `None` only after parking the tail, so
    /// the caller re-installs the secondary chain. To make that sound,
    /// the CAS-to-null path is taken only when the secondary queue is
    /// empty; otherwise we wait for a successor or swing the tail to the
    /// secondary chain atomically here.
    fn wait_for_successor_or_uncontended(&self, node: NonNull<CnaNode>) -> Option<NonNull<CnaNode>> {
        // SAFETY: Our node is the queue head.
        let n = unsafe { node.as_ref() };
        let next = n.next.load(Ordering::Acquire);
        if !next.is_null() {
            return NonNull::new(next);
        }
        // SAFETY: Owner-exclusive state.
        let state = unsafe { &mut *self.owner.get() };
        if state.sec_head.is_null() {
            if self
                .tail
                .compare_exchange(
                    node.as_ptr(),
                    ptr::null_mut(),
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return None;
            }
        } else {
            // Swing the tail directly to the secondary chain; if it
            // succeeds nobody can observe an unlocked lock in between.
            let sec_tail = state.sec_tail;
            if self
                .tail
                .compare_exchange(node.as_ptr(), sec_tail, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let head = state.sec_head;
                state.sec_head = ptr::null_mut();
                state.sec_tail = ptr::null_mut();
                state.local_passes = 0;
                // SAFETY: Head of the (formerly) secondary chain is a
                // waiting thread's node.
                unsafe { (*head).spin.store(1, Ordering::Release) };
                // The lock has been granted; report "nothing to do".
                return None;
            }
        }
        // A successor enqueued concurrently; wait for the link.
        let mut backoff = Backoff::new();
        loop {
            let next = n.next.load(Ordering::Acquire);
            if let Some(next) = NonNull::new(next) {
                return Some(next);
            }
            backoff.snooze();
        }
    }
}

impl std::fmt::Debug for CnaLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CnaLock({} cpus)", self.numa_of.len())
    }
}

/// Per-thread CNA handle.
pub struct CnaHandle {
    lock: Arc<CnaLock>,
    node: NonNull<CnaNode>,
}

// SAFETY: Node is heap-allocated with atomic shared fields.
unsafe impl Send for CnaHandle {}

impl CnaHandle {
    /// Acquires the lock.
    pub fn acquire(&mut self) {
        self.lock.acquire(self.node);
    }

    /// Releases the lock.
    ///
    /// Must only be called while held through this handle.
    pub fn release(&mut self) {
        self.lock.release(self.node);
    }
}

impl Drop for CnaHandle {
    fn drop(&mut self) {
        // SAFETY: Handles are dropped only when idle (not enqueued).
        unsafe { drop(Box::from_raw(self.node.as_ptr())) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;
    use std::sync::atomic::AtomicUsize;

    fn hammer(lock: &Arc<CnaLock>, cpus: &[usize], iters: usize) -> usize {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for &cpu in cpus {
            let lock = Arc::clone(lock);
            let counter = Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                for _ in 0..iters {
                    handle.acquire();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn single_thread_roundtrip() {
        let lock = Arc::new(CnaLock::new(&platforms::two_level(8, 2)));
        let mut handle = lock.handle(0);
        for _ in 0..1000 {
            handle.acquire();
            handle.release();
        }
    }

    #[test]
    fn mutual_exclusion_same_numa() {
        let lock = Arc::new(CnaLock::new(&platforms::two_level(8, 2)));
        assert_eq!(hammer(&lock, &[0, 1, 2, 3], 1500), 6000);
    }

    #[test]
    fn mutual_exclusion_cross_numa() {
        // The interesting case: deferral to the secondary queue and
        // re-installation must not lose waiters or grant twice.
        let lock = Arc::new(CnaLock::new(&platforms::two_level(8, 2)));
        assert_eq!(hammer(&lock, &[0, 4, 1, 5, 2, 6], 1200), 7200);
    }

    #[test]
    fn mutual_exclusion_on_paper_x86() {
        let lock = Arc::new(CnaLock::new(&platforms::paper_x86()));
        let cpus = [0usize, 24, 48, 72, 1, 25];
        assert_eq!(hammer(&lock, &cpus, 800), 4800);
    }

    #[test]
    fn no_lost_waiters_under_heavy_cross_numa_churn() {
        let lock = Arc::new(CnaLock::new(&platforms::two_level(4, 4))); // 1 cpu per node
        assert_eq!(hammer(&lock, &[0, 1, 2, 3], 2000), 8000);
    }

    #[test]
    fn uses_numa_level_of_deeper_hierarchies() {
        let lock = Arc::new(CnaLock::new(&platforms::paper_armv8()));
        assert_eq!(lock.numa_of[0], 0);
        assert_eq!(lock.numa_of[33], 1);
        assert_eq!(lock.numa_of[127], 3);
    }
}
