//! The full CLoF workflow (paper Figure 5), end to end:
//!
//! 1. discover the hierarchy from a ping-pong heatmap (simulated paper
//!    Armv8 server — on a real machine, `clof_topology::pingpong_heatmap`
//!    with a pinning hook produces the same input);
//! 2. derive/tune the hierarchy configuration;
//! 3. generate all `N^M` compositions;
//! 4. run the scripted benchmark (virtual-time simulator);
//! 5. select HC-best and LC-best locks, and build the winner for real.
//!
//! ```text
//! cargo run --release --example discover_and_select
//! ```

use clof::{rank, scripted_benchmark, DynClofLock, LockKind, Policy};
use clof_sim::engine::RunOptions;
use clof_sim::workload::placement;
use clof_sim::{Machine, ModelSpec, Workload};
use clof_topology::cluster::{cluster_heatmap, ClusterOptions};
use clof_topology::config;

fn main() {
    // Step 1: hierarchy discovery from the pair heatmap (§3.1).
    let machine = Machine::paper_armv8();
    let heatmap = machine.synthetic_heatmap();
    let opts = ClusterOptions {
        // Name the bands as the paper reads them on this machine.
        level_names: vec!["cache".into(), "numa".into(), "package".into()],
        ..ClusterOptions::default()
    };
    let discovered = cluster_heatmap(&heatmap, &opts).expect("heatmap clusters");
    println!("discovered levels: {:?}", discovered.level_names());

    // Step 2: the tuning point — keep cache/numa/package (4-level form).
    let tuned = discovered
        .select_levels(&["cache", "numa", "package"])
        .expect("levels exist");
    println!("tuned hierarchy configuration:\n{}", config::to_text(&tuned));
    let machine = machine.with_hierarchy(tuned.clone());

    // Step 3: generate every composition of the Armv8 basic-lock set.
    let combos = clof::compositions(&LockKind::PAPER_ARM, tuned.level_count());
    println!("generated {} CLoF locks", combos.len());

    // Step 4: the scripted benchmark (#runs = 1, short duration — as the
    // paper does for selection).
    let grid = [1usize, 8, 32, 64, 127];
    let opts = RunOptions {
        duration_ns: 5_000_000,
        warmup_ns: 500_000,
        seed: 7,
    };
    let results = scripted_benchmark(&combos, &grid, |combo, threads| {
        let spec = ModelSpec::clof(tuned.clone(), combo);
        let cpus = placement::compact(&machine, threads);
        clof_sim::run(&machine, &spec, &cpus, Workload::leveldb_readrandom(), opts)
            .throughput_per_us()
    });

    // Step 5: selection policies (§4.3).
    let hc = rank(&results, Policy::HighContention);
    let lc = rank(&results, Policy::LowContention);
    println!("HC-best: {}", hc.best().name());
    println!("LC-best: {}", lc.best().name());
    println!("worst:   {}", hc.worst().name());
    for (threads, tp) in &lc.best().points {
        println!("  LC-best @ {threads:>3} threads: {tp:.3} iter/us");
    }

    // Deploy the LC-best as a real lock and sanity-run it.
    let lock =
        DynClofLock::build(&tuned, &lc.best().composition).expect("selected lock builds");
    let mut handle = lock.handle(0);
    handle.acquire();
    handle.release();
    println!("deployed `{}` and exercised it on this host", lock.name());
}
