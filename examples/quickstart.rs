//! Quickstart: compose a multi-level NUMA-aware lock and use it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a 3-level heterogeneous CLoF lock (`mcs-clh-tkt`) for a small
//! machine, protects a shared counter with it from threads spread across
//! every cohort, and prints the result.

use std::sync::Arc;

use clof::{ClofMutex, LockKind};
use clof_topology::{platforms, Hierarchy};

fn main() {
    // 1. Describe the machine. Real deployments discover this (see the
    //    `discover_and_select` example); here: 8 CPUs, cache-sharing
    //    pairs inside two 4-CPU NUMA nodes.
    let hierarchy: Hierarchy = platforms::tiny();
    println!(
        "machine: {} CPUs, levels {:?}",
        hierarchy.ncpus(),
        hierarchy.level_names()
    );

    // 2. Compose a lock: one basic lock per level, innermost first —
    //    MCS within a cache pair, CLH across a NUMA node, Ticketlock at
    //    the system level (the paper's `mcs-clh-tkt` notation).
    let composition = [LockKind::Mcs, LockKind::Clh, LockKind::Ticket];
    let mutex = Arc::new(
        ClofMutex::new(0u64, &hierarchy, &composition).expect("valid composition"),
    );
    println!("lock: {}", mutex.raw().name());

    // 3. Use it: one thread per CPU, each incrementing the shared
    //    counter through its own per-CPU handle.
    const ITERS: u64 = 10_000;
    let mut threads = Vec::new();
    for cpu in 0..hierarchy.ncpus() {
        let mut handle = mutex.handle(cpu);
        threads.push(std::thread::spawn(move || {
            for _ in 0..ITERS {
                *handle.lock() += 1;
            }
        }));
    }
    for t in threads {
        t.join().expect("worker");
    }

    let total = *mutex.handle(0).lock();
    assert_eq!(total, ITERS * hierarchy.ncpus() as u64);
    println!(
        "counter: {total} ({} threads x {ITERS} increments) — mutual exclusion held",
        hierarchy.ncpus()
    );
}
