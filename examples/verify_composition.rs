//! The correctness argument (paper §4.2), run live:
//!
//! * checks the induction step (mutual exclusion, context invariant,
//!   deadlock freedom, starvation freedom);
//! * shows the inverted-release-order mutant violating the context
//!   invariant, with the counterexample trace;
//! * shows the unfair-component mutant starving a cohort (Theorem 4.1);
//! * prints the model-checking scaling table and the store-buffer litmus
//!   matrix.
//!
//! ```text
//! cargo run --release --example verify_composition
//! ```

use clof_verify::checker::{check, CheckResult};
use clof_verify::experiments::{induction_step_cost, scaling_table};
use clof_verify::models::{clof_model, ClofModelCfg};
use clof_verify::tso::{self, explore, MemoryModel};

fn main() {
    // 1. The induction step.
    let step = check(&clof_model(&ClofModelCfg::induction_step()));
    println!(
        "induction step: {:?} ({} states, {} transitions)",
        step.result, step.states, step.transitions
    );
    assert_eq!(step.result, CheckResult::Ok);

    // 2. Mutant: inverted release order (§4.1.3).
    let mut bad = ClofModelCfg::induction_step();
    bad.inverted_release = true;
    match check(&clof_model(&bad)).result {
        CheckResult::InvariantViolated { invariant, trace } => {
            println!("\ninverted release order violates `{invariant}`; trace:");
            for step in &trace {
                println!("  {step}");
            }
        }
        other => panic!("mutant not caught: {other:?}"),
    }

    // 3. Mutant: unfair system lock (Theorem 4.1).
    let mut unfair = ClofModelCfg::induction_step();
    unfair.unfair_root = true;
    unfair.iterations = 0; // infinite lock/unlock loops
    match check(&clof_model(&unfair)).result {
        CheckResult::Starvation { tid } => {
            println!("\nTTAS at the system level: thread {tid} can starve");
        }
        other => panic!("mutant not caught: {other:?}"),
    }

    // 4. Scaling: why induction beats whole-lock checking.
    println!("\nwhole-lock checking vs depth (paper §4.2.3):");
    for row in scaling_table(3) {
        println!(
            "  {} levels, {} threads: {:>9} states, {:>10} transitions, ok={}",
            row.levels, row.threads, row.states, row.transitions, row.ok
        );
    }
    let step = induction_step_cost();
    println!(
        "  induction step (any depth): {} states, {} transitions",
        step.states, step.transitions
    );

    // 5. Store-buffer litmus matrix (A4).
    println!("\nlitmus matrix (forbidden outcome reachable?):");
    for test in [
        tso::store_buffering(false),
        tso::store_buffering(true),
        tso::broken_tas_lock(),
        tso::atomic_tas_lock(),
        tso::message_passing(),
    ] {
        let sc = explore(&test, MemoryModel::Sc).forbidden_reachable;
        let tso_r = explore(&test, MemoryModel::Tso).forbidden_reachable;
        println!("  {:<24} SC: {:<9} TSO: {}", test.name, sc, tso_r);
    }
}
