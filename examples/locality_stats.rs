//! Observing a CLoF lock's locality with the built-in instrumentation.
//!
//! ```text
//! cargo run --release --example locality_stats
//! ```
//!
//! Runs contending threads through a 3-level lock twice — once with
//! threads packed into one cache cohort, once spread across NUMA nodes —
//! and prints the per-level hand-off statistics (`DynClofLock::stats`):
//! the packed run resolves almost everything by passing at the innermost
//! level, the spread run has to release upward.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use clof::{DynClofLock, LockKind};
use clof_topology::platforms;

fn run_on(cpus: &[usize], label: &str) {
    let hierarchy = platforms::tiny();
    let lock = Arc::new(
        DynClofLock::build(
            &hierarchy,
            &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        )
        .expect("valid composition"),
    );
    let counter = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    for &cpu in cpus {
        let lock = Arc::clone(&lock);
        let counter = Arc::clone(&counter);
        threads.push(std::thread::spawn(move || {
            let mut handle = lock.handle(cpu);
            for _ in 0..20_000 {
                handle.acquire();
                counter.fetch_add(1, Ordering::Relaxed);
                handle.release();
            }
        }));
    }
    for t in threads {
        t.join().expect("worker");
    }

    println!("{label} (CPUs {cpus:?}):");
    for stats in lock.stats() {
        println!(
            "  level {} ({:>6}): {:>6} acquisitions, {:>6} local passes, \
             {:>6} releases up  ({:>5.1}% local)",
            stats.level,
            hierarchy.levels()[stats.level].name,
            stats.acquisitions,
            stats.passes,
            stats.releases_up,
            stats.locality() * 100.0
        );
    }
    println!();
}

fn main() {
    // Same cache pair: contention resolvable at level 0.
    run_on(&[0, 0, 1, 1], "packed into one cache cohort");
    // One thread per NUMA quad corner: every hand-off crosses levels.
    run_on(&[0, 3, 4, 7], "spread across cohorts");
}
