//! The paper's LevelDB `readrandom` experiment on this host: the MiniDb
//! store under several interchangeable locks (the `LD_PRELOAD` analogue),
//! reporting real measured throughput.
//!
//! ```text
//! cargo run --release --example leveldb_readrandom
//! ```
//!
//! Numbers on a small host will not show NUMA effects (that is what
//! `clof-sim` is for); this demonstrates the pluggable-lock workload path
//! with real atomics.

use std::sync::Arc;
use std::time::Instant;

use clof::LockKind;
use clof_kvstore::{LockChoice, MiniDb, MiniDbOptions};
use clof_topology::platforms;

fn main() {
    let hierarchy = platforms::tiny();
    let threads = 4usize;
    let reads_per_thread = 20_000usize;
    let key_space = 10_000usize;

    let choices: Vec<(&str, LockChoice)> = vec![
        (
            "clof mcs-clh-tkt",
            LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
        ),
        (
            "clof tkt-clh-tkt",
            LockChoice::Clof(vec![LockKind::Ticket, LockKind::Clh, LockKind::Ticket]),
        ),
        ("hmcs", LockChoice::Hmcs),
        ("cna", LockChoice::Cna),
        ("shfllock", LockChoice::Shfl),
        ("mcs (flat)", LockChoice::Basic(LockKind::Mcs)),
        ("std::sync::Mutex", LockChoice::Std),
    ];

    println!(
        "MiniDb readrandom: {threads} threads x {reads_per_thread} reads, \
         {key_space} keys\n"
    );
    for (name, choice) in choices {
        let db = Arc::new(
            MiniDb::open(&hierarchy, &choice, MiniDbOptions::default()).expect("open store"),
        );
        db.handle(0).fill_seq(key_space);

        let start = Instant::now();
        let mut workers = Vec::new();
        for t in 0..threads {
            let db = Arc::clone(&db);
            let cpu = (t * 2) % hierarchy.ncpus(); // spread across cohorts
            workers.push(std::thread::spawn(move || {
                db.handle(cpu)
                    .read_random(reads_per_thread, key_space, t as u64)
            }));
        }
        let mut found = 0usize;
        for w in workers {
            found += w.join().expect("reader");
        }
        let elapsed = start.elapsed();
        let total = threads * reads_per_thread;
        assert_eq!(found, total, "all keys are in range");
        println!(
            "{name:>18}: {:>8.1} kreads/s ({total} reads in {elapsed:.2?})",
            total as f64 / elapsed.as_secs_f64() / 1e3
        );
    }
}
