//! Lock telemetry demo: a 3-level composed lock hammered by 8 threads,
//! then its per-level counters, latency distributions and pass-event
//! trace, in all three export formats.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --features obs --example obs_demo
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clof::obs::{render_json, render_prometheus};
use clof::{ClofParams, DynClofLock, LockKind};
use clof_topology::platforms;

fn main() {
    // The "tiny" machine: 8 CPUs, 2 cores per cache group, 2 groups per
    // NUMA node — a 3-level hierarchy. One thread per CPU.
    let hierarchy = platforms::tiny();
    let lock = Arc::new(
        DynClofLock::build_with(
            &hierarchy,
            &[LockKind::Ticket, LockKind::Mcs, LockKind::Ticket],
            // A small keep_local threshold so the demo shows resets too.
            ClofParams {
                keep_local_threshold: 16,
            },
            false,
        )
        .expect("tiny hierarchy accepts 3-level compositions"),
    );

    const ITERS: u64 = 20_000;
    let shared = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    for cpu in 0..hierarchy.ncpus() {
        let lock = Arc::clone(&lock);
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            let mut handle = lock.handle(cpu);
            for _ in 0..ITERS {
                handle.acquire();
                // A tiny critical section so hold-time has something to
                // measure.
                let v = shared.load(Ordering::Relaxed);
                shared.store(v + 1, Ordering::Relaxed);
                handle.release();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        shared.load(Ordering::Relaxed),
        ITERS * hierarchy.ncpus() as u64
    );

    let snap = lock.obs_snapshot();

    println!("=== human summary ===");
    println!("{snap}");
    println!();

    println!("=== per-level detail ===");
    for level in &snap.levels {
        println!(
            "level {}: pass rate {:.1}% ({} passes / {} decisions), \
             keep_local resets {}, acquire p50 {} ns p99 {} ns",
            level.level,
            100.0 * level.pass_rate(),
            level.passes_taken,
            level.passes_taken + level.passes_declined,
            level.keep_local_resets,
            level.acquire_ns.p50(),
            level.acquire_ns.p99(),
        );
    }
    println!();

    println!("=== last pass events ===");
    for event in snap.events.iter().rev().take(5).rev() {
        println!(
            "  t+{:>12} ns  level {}  thread {:>2}  {}",
            event.timestamp_ns, event.level, event.thread, event.kind
        );
    }
    println!("  ({} recorded, {} dropped)", snap.events_recorded, snap.events_dropped);
    println!();

    println!("=== JSON ===");
    println!("{}", render_json(&snap));
    println!();

    println!("=== Prometheus ===");
    print!("{}", render_prometheus(&snap));
}
