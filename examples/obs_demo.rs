//! Lock telemetry demo: a 3-level composed lock hammered by 8 threads
//! with the causal span tracer on, live windowed rates while it runs,
//! then counters, latency distributions, the trace analysis, all three
//! export formats, a Perfetto-loadable trace file, the contention
//! profiler (site registry, wait/hold attribution, folded stacks, and
//! the waits-for graph verdict), the starvation watchdog catching a
//! deliberately hogged lock, and finally the telemetry server scraping
//! its own endpoints over a real socket.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --features obs --example obs_demo
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clof::obs::{
    analyze, default_rules, http_get, profile, registry, render_chrome_trace, render_folded,
    render_json, render_prometheus, serve, trace, waitgraph, Sampler, ServeConfig, Watchdog,
    WatchdogConfig,
};
use clof::{ClofParams, DynClofLock, LockKind};
use clof_topology::platforms;

fn main() {
    // The "tiny" machine: 8 CPUs, 2 cores per cache group, 2 groups per
    // NUMA node — a 3-level hierarchy. One thread per CPU.
    let hierarchy = platforms::tiny();
    let lock = Arc::new(
        DynClofLock::build_with(
            &hierarchy,
            &[LockKind::Ticket, LockKind::Mcs, LockKind::Ticket],
            // A small keep_local threshold so the demo shows resets too.
            ClofParams {
                keep_local_threshold: 16,
            },
            false,
        )
        .expect("tiny hierarchy accepts 3-level compositions"),
    );

    // Record causal spans for the whole run. The per-thread buffers are
    // sized small on purpose so the demo also shows what a truncated
    // trace looks like in the analysis.
    trace::enable(8192);

    const ITERS: u64 = 20_000;
    let shared = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    for cpu in 0..hierarchy.ncpus() {
        let lock = Arc::clone(&lock);
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            let mut handle = lock.handle(cpu);
            for _ in 0..ITERS {
                handle.acquire();
                // A tiny critical section so hold-time has something to
                // measure.
                let v = shared.load(Ordering::Relaxed);
                shared.store(v + 1, Ordering::Relaxed);
                handle.release();
            }
        }));
    }

    // Live windowed telemetry while the hammer runs: cumulative
    // snapshots in, per-window rates out.
    println!("=== live windowed rates (100 ms cadence) ===");
    let mut sampler = Sampler::new();
    sampler.tick(lock.obs_snapshot());
    while threads.iter().any(|t| !t.is_finished()) {
        std::thread::sleep(Duration::from_millis(100));
        if let Some(rates) = sampler.tick(lock.obs_snapshot()) {
            println!("{rates}");
        }
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        shared.load(Ordering::Relaxed),
        ITERS * hierarchy.ncpus() as u64
    );
    println!();

    trace::disable();
    let span_trace = trace::snapshot();
    let snap = lock.obs_snapshot();

    println!("=== human summary ===");
    println!("{snap}");
    println!();

    println!("=== per-level detail ===");
    for level in &snap.levels {
        println!(
            "level {}: pass rate {:.1}% ({} passes / {} decisions), \
             keep_local resets {}, acquire p50 {} ns p99 {} ns",
            level.level,
            100.0 * level.pass_rate(),
            level.passes_taken,
            level.passes_taken + level.passes_declined,
            level.keep_local_resets,
            level.acquire_ns.p50(),
            level.acquire_ns.p99(),
        );
    }
    println!();

    println!("=== last pass events ===");
    for event in snap.events.iter().rev().take(5).rev() {
        println!(
            "  t+{:>12} ns  level {}  thread {:>2}  {}",
            event.timestamp_ns, event.level, event.thread, event.kind
        );
    }
    println!("  ({} recorded, {} dropped)", snap.events_recorded, snap.events_dropped);
    println!();

    println!("=== causal span trace ===");
    let trace_path = std::env::temp_dir().join("clof_obs_demo_trace.json");
    std::fs::write(&trace_path, render_chrome_trace(&span_trace)).expect("write trace file");
    println!(
        "{} span events recorded, {} dropped; Perfetto/chrome://tracing JSON at {}",
        span_trace.events.len(),
        span_trace.dropped,
        trace_path.display()
    );
    print!("{}", analyze(&span_trace).render());
    println!();

    println!("=== JSON ===");
    println!("{}", render_json(&snap));
    println!();

    println!("=== Prometheus ===");
    print!("{}", render_prometheus(&snap));
    println!();

    // The contention profiler: the same run, now attributed to the
    // process-global site registry — who is this lock, where was it
    // built, where did the waiting happen inside it.
    println!("=== contention profiler ===");
    for site in registry::global().sites() {
        println!(
            "  site {:>2}  {:<16} {:<12} gen {}  {}",
            site.id,
            site.label,
            site.shape,
            site.generation,
            site.location()
        );
    }
    let prof = profile::global().snapshot();
    for site in prof.top_k(3) {
        println!(
            "  top: {} — {} acquires, {} waited (mean {} ns), mean hold {} ns",
            site.label,
            site.acquires,
            site.waits,
            site.wait_ns.checked_div(site.waits).unwrap_or(0),
            site.hold_ns.checked_div(site.holds).unwrap_or(0),
        );
    }
    println!("  folded stacks (flamegraph.pl-ready, weight = wait ns):");
    for line in render_folded(&prof).lines().take(6) {
        println!("    {line}");
    }
    let report = waitgraph::global().analyze(u64::MAX);
    println!(
        "  waits-for graph: {} waiting, {} findings — {}",
        report.threads_waiting,
        report.findings.len(),
        if report.findings.is_empty() { "clean" } else { "DEADLOCK/INVERSION" }
    );
    assert!(report.findings.is_empty(), "quiescent run must be clean");
    println!();

    // Finally the watchdog: hog the lock from the main thread while a
    // contender waits, and let the monitor flag the stall (with the
    // lock's own queue hints as diagnostic context).
    println!("=== starvation watchdog ===");
    let watchdog = Watchdog::new(WatchdogConfig {
        stall_ns: 50_000_000, // 50 ms is "starved" for a demo
        poll: Duration::from_millis(10),
    })
    .with_diag({
        let lock = Arc::clone(&lock);
        move || {
            let hints: Vec<String> = lock
                .queue_hints()
                .into_iter()
                .map(|(level, waiters)| format!("L{level}:{waiters}"))
                .collect();
            format!("queued waiters by level [{}]", hints.join(" "))
        }
    })
    .spawn(|report| println!("  {report}"));

    let mut holder = lock.handle(0);
    holder.acquire();
    let contender = {
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            let mut handle = lock.handle(4);
            handle.acquire();
            handle.release();
        })
    };
    // Hold until the watchdog fires (bounded, so a broken watchdog
    // cannot hang the demo).
    let deadline = Instant::now() + Duration::from_secs(5);
    while watchdog.stalls() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    holder.release();
    contender.join().unwrap();
    let stalls = watchdog.stop();
    println!("  watchdog flagged {stalls} stall report(s) while the lock was hogged");
    assert!(stalls >= 1, "watchdog missed a 50ms+ stall");
    println!();

    // The serving layer: the same snapshot the exports above rendered,
    // now behind a zero-dependency HTTP endpoint with SLO burn-rate
    // alerts attached. Bind to an ephemeral port and self-scrape.
    println!("=== telemetry server ===");
    let server = serve(
        "127.0.0.1:0",
        Arc::new({
            let lock = Arc::clone(&lock);
            move || lock.obs_snapshot()
        }),
        ServeConfig {
            rules: default_rules(1_000_000, 1_000_000), // 1 ms p99 objectives
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    println!("serving on {}", server.url());
    for path in ["/metrics", "/snapshot", "/health", "/alerts", "/profile"] {
        let (status, body) = http_get(server.addr(), path).expect("self-scrape");
        println!("  GET {path:<9} -> {status} ({} bytes)", body.len());
        assert_eq!(status, 200, "endpoint {path} should be healthy");
    }
    let (_, alerts) = http_get(server.addr(), "/alerts").expect("alerts scrape");
    println!("  alerts body: {alerts}");
    println!("  {} request(s) served; shutting down", server.requests());
}
