//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use clof::{DynClofLock, LockKind};
use clof_topology::cluster::{cluster_heatmap, cohort_speedups, ClusterOptions};
use clof_topology::{config, Heatmap, Hierarchy};

/// Strategy: a regular hierarchy with 1–3 non-system levels over up to
/// 32 CPUs, expressed as nested group sizes.
fn regular_hierarchy() -> impl Strategy<Value = Hierarchy> {
    // Factors multiply innermost-outward; ncpus = product * top.
    (1usize..=3, 2usize..=4, 1usize..=2, 1usize..=2).prop_map(|(depth, f0, f1, f2)| {
        let factors = [f0, f0 * (f1 + 1), f0 * (f1 + 1) * (f2 + 1)];
        let ncpus = factors[depth - 1] * 2;
        let mut shape: Vec<(String, usize)> = Vec::new();
        for (i, &f) in factors[..depth].iter().enumerate() {
            shape.push((format!("l{i}"), f));
        }
        let shape_refs: Vec<(&str, usize)> =
            shape.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        Hierarchy::regular(&shape_refs, ncpus).expect("regular shapes are valid")
    })
}

fn fair_kind() -> impl Strategy<Value = LockKind> {
    prop_oneof![
        Just(LockKind::Ticket),
        Just(LockKind::Mcs),
        Just(LockKind::Clh),
        Just(LockKind::Hemlock),
        Just(LockKind::HemlockCtr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any fair composition over any regular hierarchy preserves mutual
    /// exclusion under real threads spanning the cohorts.
    #[test]
    fn composed_lock_mutual_exclusion(
        hierarchy in regular_hierarchy(),
        seed_kinds in proptest::collection::vec(fair_kind(), 4),
    ) {
        let levels = hierarchy.level_count();
        let kinds: Vec<LockKind> =
            (0..levels).map(|i| seed_kinds[i % seed_kinds.len()]).collect();
        let lock = std::sync::Arc::new(DynClofLock::build(&hierarchy, &kinds).unwrap());
        let n = hierarchy.ncpus();
        let cpus = [0, n / 3, (2 * n) / 3, n - 1];
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut threads = Vec::new();
        for &cpu in &cpus {
            let lock = std::sync::Arc::clone(&lock);
            let counter = std::sync::Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                for _ in 0..150 {
                    handle.acquire();
                    let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                    counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        prop_assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            cpus.len() * 150
        );
    }

    /// The config text format round-trips any regular hierarchy.
    #[test]
    fn config_roundtrip(hierarchy in regular_hierarchy()) {
        let text = config::to_text(&hierarchy);
        let back = config::from_text(&text).unwrap();
        prop_assert_eq!(hierarchy, back);
    }

    /// Clustering a level-derived heatmap recovers the shared-level
    /// structure whenever the level speeds are separated (>25% bands).
    #[test]
    fn cluster_recovers_structure(hierarchy in regular_hierarchy()) {
        let levels = hierarchy.level_count();
        // Geometric speeds: 4x per level, far beyond the band gap.
        let heatmap = Heatmap::from_fn(hierarchy.ncpus(), |a, b| {
            if a == b {
                0.0
            } else {
                4f64.powi((levels - 1 - hierarchy.shared_level(a, b)) as i32)
            }
        });
        let found = cluster_heatmap(&heatmap, &ClusterOptions::default()).unwrap();
        for a in 0..hierarchy.ncpus() {
            for b in 0..hierarchy.ncpus() {
                prop_assert_eq!(
                    found.shared_level(a, b),
                    hierarchy.shared_level(a, b),
                    "pair ({}, {})", a, b
                );
            }
        }
        // Table 2 then reads exact speedups back.
        let speedups = cohort_speedups(&heatmap, &found);
        let (_, system) = speedups.last().unwrap();
        prop_assert!((system - 1.0).abs() < 1e-9);
    }

    /// `shared_level` is symmetric, reflexive-innermost, and consistent
    /// with cohort membership.
    #[test]
    fn shared_level_laws(hierarchy in regular_hierarchy(), a in 0usize..64, b in 0usize..64) {
        let n = hierarchy.ncpus();
        let (a, b) = (a % n, b % n);
        prop_assert_eq!(hierarchy.shared_level(a, b), hierarchy.shared_level(b, a));
        prop_assert_eq!(hierarchy.shared_level(a, a), 0);
        let l = hierarchy.shared_level(a, b);
        prop_assert_eq!(hierarchy.cohort(l, a), hierarchy.cohort(l, b));
        if l > 0 {
            prop_assert_ne!(hierarchy.cohort(l - 1, a), hierarchy.cohort(l - 1, b));
        }
    }

    /// The simulator is deterministic and every thread completes work.
    #[test]
    fn simulator_determinism(seed in any::<u64>(), threads in 2usize..12) {
        use clof_sim::{engine::{run, RunOptions}, Machine, ModelSpec, Workload};
        let machine = Machine::paper_armv8();
        let spec = ModelSpec::hmcs(machine.hierarchy.clone());
        let cpus: Vec<usize> = (0..threads).map(|t| t * 10 % machine.ncpus()).collect();
        let opts = RunOptions { duration_ns: 1_000_000, warmup_ns: 100_000, seed };
        let a = run(&machine, &spec, &cpus, Workload::leveldb_readrandom(), opts);
        let b = run(&machine, &spec, &cpus, Workload::leveldb_readrandom(), opts);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(&a.per_thread, &b.per_thread);
        prop_assert!(a.per_thread.iter().all(|&c| c > 0));
    }
}
