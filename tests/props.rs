//! Property-based tests over the core data structures and invariants,
//! driven by the in-repo `clof-testkit` engine (replay any failure with
//! the printed `CLOF_TESTKIT_SEED`).

use clof::{DynClofLock, LockKind};
use clof_testkit::gen::{any_u64, vec_of, zip, Gen};
use clof_testkit::strategies::{fair_kind, kinds_for_levels, regular_hierarchy};
use clof_testkit::{props, run_stress, tk_assert, tk_assert_eq, tk_assert_ne, Config, StressOptions};
use clof_topology::cluster::{cluster_heatmap, cohort_speedups, ClusterOptions};
use clof_topology::{config, Heatmap, Hierarchy};

props! {
    config: Config::with_cases(24);

    /// Any fair composition over any regular hierarchy preserves mutual
    /// exclusion under real threads spanning the cohorts — checked by the
    /// testkit oracle (owner cell, torn-counter pair, context invariant)
    /// with chaos injection inside the lock paths.
    fn composed_lock_mutual_exclusion(
        hierarchy in regular_hierarchy(),
        seed_kinds in vec_of(fair_kind(), 4, 5),
    ) {
        let kinds = kinds_for_levels(&seed_kinds, hierarchy.level_count());
        let lock = std::sync::Arc::new(DynClofLock::build(&hierarchy, &kinds).unwrap());
        let n = hierarchy.ncpus();
        let cpus = [0, n / 3, (2 * n) / 3, n - 1];
        let opts = StressOptions {
            threads: cpus.len(),
            iters: 60,
            label: lock.name().to_string(),
            ..StressOptions::default()
        };
        let report = run_stress(&opts, |tid| lock.handle(cpus[tid]));
        tk_assert!(report.passed(), "{}", report.render());
        tk_assert_eq!(report.total_acquisitions, cpus.len() as u64 * 60);
    }

    /// The config text format round-trips any regular hierarchy.
    fn config_roundtrip(hierarchy in regular_hierarchy()) {
        let text = config::to_text(&hierarchy);
        let back = config::from_text(&text).unwrap();
        tk_assert_eq!(hierarchy, back);
    }

    /// Clustering a level-derived heatmap recovers the shared-level
    /// structure whenever the level speeds are separated (>25% bands).
    fn cluster_recovers_structure(hierarchy in regular_hierarchy()) {
        let levels = hierarchy.level_count();
        // Geometric speeds: 4x per level, far beyond the band gap.
        let heatmap = Heatmap::from_fn(hierarchy.ncpus(), |a, b| {
            if a == b {
                0.0
            } else {
                4f64.powi((levels - 1 - hierarchy.shared_level(a, b)) as i32)
            }
        });
        let found = cluster_heatmap(&heatmap, &ClusterOptions::default()).unwrap();
        for a in 0..hierarchy.ncpus() {
            for b in 0..hierarchy.ncpus() {
                tk_assert_eq!(
                    found.shared_level(a, b),
                    hierarchy.shared_level(a, b),
                    "pair ({}, {})", a, b
                );
            }
        }
        // Table 2 then reads exact speedups back.
        let speedups = cohort_speedups(&heatmap, &found);
        let (_, system) = speedups.last().unwrap();
        tk_assert!((system - 1.0).abs() < 1e-9);
    }

    /// `shared_level` is symmetric, reflexive-innermost, and consistent
    /// with cohort membership.
    fn shared_level_laws(
        hierarchy in regular_hierarchy(),
        a in Gen::<usize>::int_range(0, 64),
        b in Gen::<usize>::int_range(0, 64),
    ) {
        let n = hierarchy.ncpus();
        let (a, b) = (a % n, b % n);
        tk_assert_eq!(hierarchy.shared_level(a, b), hierarchy.shared_level(b, a));
        tk_assert_eq!(hierarchy.shared_level(a, a), 0);
        let l = hierarchy.shared_level(a, b);
        tk_assert_eq!(hierarchy.cohort(l, a), hierarchy.cohort(l, b));
        if l > 0 {
            tk_assert_ne!(hierarchy.cohort(l - 1, a), hierarchy.cohort(l - 1, b));
        }
    }

    /// The simulator is deterministic and every thread completes work.
    fn simulator_determinism(
        pair in zip(any_u64(), Gen::<usize>::int_range(2, 12)),
    ) {
        use clof_sim::{engine::{run, RunOptions}, Machine, ModelSpec, Workload};
        let (seed, threads) = pair;
        let machine = Machine::paper_armv8();
        let spec = ModelSpec::hmcs(machine.hierarchy.clone());
        let cpus: Vec<usize> = (0..threads).map(|t| t * 10 % machine.ncpus()).collect();
        let opts = RunOptions { duration_ns: 1_000_000, warmup_ns: 100_000, seed };
        let a = run(&machine, &spec, &cpus, Workload::leveldb_readrandom(), opts);
        let b = run(&machine, &spec, &cpus, Workload::leveldb_readrandom(), opts);
        tk_assert_eq!(a.completed, b.completed);
        tk_assert_eq!(&a.per_thread, &b.per_thread);
        tk_assert!(a.per_thread.iter().all(|&c| c > 0));
    }
}

/// The hierarchy generator itself stays inside the domain every property
/// above assumes (non-empty, at most 3 lock levels plus the system root).
#[test]
fn hierarchy_generator_domain() {
    let g = regular_hierarchy();
    let mut rng = clof_testkit::TestRng::new(clof_testkit::check::DEFAULT_SEED);
    for _ in 0..200 {
        let h: Hierarchy = g.sample(&mut rng);
        assert!(h.ncpus() >= 2 && h.level_count() >= 1);
        assert!(LockKind::PAPER_ARM.len() >= h.level_count().min(3));
    }
}
