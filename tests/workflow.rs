//! End-to-end integration of the CLoF workflow (paper Figure 5):
//! heatmap → clustering → hierarchy config → generation → scripted
//! benchmark → selection → deployment of a real lock.

use clof::{rank, scripted_benchmark, DynClofLock, LockKind, Policy};
use clof_sim::engine::RunOptions;
use clof_sim::workload::placement;
use clof_sim::{Machine, ModelSpec, Workload};
use clof_topology::cluster::{cluster_heatmap, ClusterOptions};
use clof_topology::config;

fn quick_opts() -> RunOptions {
    RunOptions {
        duration_ns: 2_000_000,
        warmup_ns: 200_000,
        seed: 11,
    }
}

#[test]
fn full_workflow_on_simulated_armv8() {
    // Discovery.
    let machine = Machine::paper_armv8();
    let heatmap = machine.synthetic_heatmap();
    // Name the discovered levels as the paper does for this machine
    // (naming is part of the manual heatmap reading CLoF automates away
    // structurally, not nominally).
    let opts = ClusterOptions {
        level_names: vec!["cache".into(), "numa".into(), "package".into()],
        ..ClusterOptions::default()
    };
    let discovered = cluster_heatmap(&heatmap, &opts).unwrap();
    assert_eq!(
        discovered.level_names(),
        machine.hierarchy.level_names(),
        "clustering recovers the machine hierarchy"
    );

    // Tuning: 3-level form, serialized and re-parsed (the config file
    // users edit).
    let tuned = discovered.select_levels(&["cache", "numa"]).unwrap();
    let text = config::to_text(&tuned);
    let reparsed = config::from_text(&text).unwrap();
    assert_eq!(tuned, reparsed);

    // Generation + scripted benchmark + selection.
    let machine = machine.with_hierarchy(tuned.clone());
    let combos = clof::compositions(&LockKind::PAPER_ARM, tuned.level_count());
    assert_eq!(combos.len(), 64);
    let grid = [1usize, 16, 127];
    let results = scripted_benchmark(&combos, &grid, |combo, threads| {
        let spec = ModelSpec::clof(tuned.clone(), combo);
        let cpus = placement::compact(&machine, threads);
        clof_sim::run(
            &machine,
            &spec,
            &cpus,
            Workload::leveldb_readrandom(),
            quick_opts(),
        )
        .throughput_per_us()
    });
    let hc = rank(&results, Policy::HighContention);
    let lc = rank(&results, Policy::LowContention);

    // Both selections must beat the worst lock decisively at their
    // favoured end of the contention range.
    let worst = hc.worst();
    let hc_best = hc.best();
    assert!(
        hc_best.points.last().unwrap().1 > 1.5 * worst.points.last().unwrap().1,
        "HC-best ({}) must dominate the worst ({}) at max contention",
        hc_best.name(),
        worst.name()
    );

    // Deploy the LC-best as a real lock and hammer it across cohorts.
    let lock = DynClofLock::build(&tuned, &lc.best().composition).unwrap();
    let lock = std::sync::Arc::new(lock);
    let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut threads = Vec::new();
    for cpu in [0usize, 5, 40, 127] {
        let lock = std::sync::Arc::clone(&lock);
        let counter = std::sync::Arc::clone(&counter);
        threads.push(std::thread::spawn(move || {
            let mut handle = lock.handle(cpu);
            for _ in 0..500 {
                handle.acquire();
                let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                handle.release();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 2000);
}

#[test]
fn host_discovery_feeds_the_generator() {
    // Whatever this host's sysfs reports must be buildable into locks.
    let hierarchy = match clof_topology::sysfs::discover() {
        Ok(h) => h,
        Err(_) => clof_topology::Hierarchy::flat(2).unwrap(), // CI fallback
    };
    let kinds = vec![LockKind::Mcs; hierarchy.level_count()];
    let lock = DynClofLock::build(&hierarchy, &kinds).unwrap();
    let mut handle = lock.handle(0);
    handle.acquire();
    handle.release();
}
