//! Schedule-fuzzed stress-oracle matrix over composed locks: every
//! `LockKind` × {2,3}-level hierarchy × {4,8} threads, 64 seeds total
//! (2 per matrix cell), with chaos injection inside the lock paths.
//!
//! Asserted per run: mutual exclusion (owner cell + torn-counter pair),
//! the paper's §4.1 context invariant (the `testkit`-gated `ctx_busy`
//! detector panics inside acquire/release and the oracle converts that
//! into a violation), and — in the dedicated fairness test — a bounded
//! acquisition gap. A failing run prints its seed; replay by running the
//! same test again (the matrix is deterministic) and grepping for that
//! seed, or by driving `run_stress` with it directly.

use std::sync::Arc;

use clof::{ClofParams, DynClofLock, LockKind};
use clof_testkit::oracle::mutants::BrokenTas;
use clof_testkit::strategies::build_regular;
use clof_testkit::{fuzz_seeds, run_stress, seed_batch, RawHandle, StressOptions};
use clof_topology::Hierarchy;

/// 2 seeds per (kind, hierarchy, threads) cell; 8 kinds × 2 × 2 × 2 = 64.
const SEEDS_PER_CELL: usize = 2;
const ITERS: u64 = 25;

fn hierarchies() -> Vec<Hierarchy> {
    vec![
        build_regular(&[2, 4]),    // 2 levels, 8 CPUs
        build_regular(&[2, 4, 8]), // 3 levels, 16 CPUs
    ]
}

/// Runs the full {hierarchy} × {threads} × {seeds} cell block for one
/// leaf-to-root homogeneous composition of `kind`.
fn oracle_matrix(kind: LockKind) {
    for hierarchy in hierarchies() {
        let kinds = vec![kind; hierarchy.level_count()];
        // Unfair kinds are deliberately included: the oracle checks
        // mutual exclusion and the context invariant for them too (only
        // fairness is out of scope for ttas/bo).
        let lock = Arc::new(
            DynClofLock::build_with(&hierarchy, &kinds, ClofParams::default(), true)
                .expect("composition builds"),
        );
        for threads in [4usize, 8] {
            let n = hierarchy.ncpus();
            let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
            let seeds = seed_batch(
                0xC10F_0000 ^ (kind as u64) << 8 ^ (hierarchy.level_count() as u64) << 4
                    ^ threads as u64,
                SEEDS_PER_CELL,
            );
            let opts = StressOptions {
                threads,
                iters: ITERS,
                label: format!("{}×{}lvl×{}t", lock.name(), hierarchy.level_count(), threads),
                ..StressOptions::default()
            };
            let lock = Arc::clone(&lock);
            let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| lock.handle(cpus[tid]));
            outcome.assert_passed();
            assert_eq!(
                outcome.total_acquisitions,
                SEEDS_PER_CELL as u64 * threads as u64 * ITERS
            );
        }
    }
}

#[test]
fn oracle_matrix_ticket() {
    oracle_matrix(LockKind::Ticket);
}

#[test]
fn oracle_matrix_mcs() {
    oracle_matrix(LockKind::Mcs);
}

#[test]
fn oracle_matrix_clh() {
    oracle_matrix(LockKind::Clh);
}

#[test]
fn oracle_matrix_hemlock() {
    oracle_matrix(LockKind::Hemlock);
}

#[test]
fn oracle_matrix_hemlock_ctr() {
    oracle_matrix(LockKind::HemlockCtr);
}

#[test]
fn oracle_matrix_anderson() {
    oracle_matrix(LockKind::Anderson);
}

#[test]
fn oracle_matrix_ttas() {
    oracle_matrix(LockKind::Ttas);
}

#[test]
fn oracle_matrix_backoff() {
    oracle_matrix(LockKind::Backoff);
}

/// Schedule-fuzzed matrix over the monomorphized finalist compositions:
/// the fast dispatch tier must uphold the same oracle invariants as the
/// generic enum tree it replicates, on both hierarchy depths.
#[test]
fn oracle_matrix_monomorphized_finalists() {
    use clof::DispatchTier;
    let finalists: [&[LockKind]; 7] = [
        &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Clh, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Clh, LockKind::Hemlock],
        &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
        &[LockKind::Ticket, LockKind::Ticket],
        &[LockKind::Mcs, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Ticket],
    ];
    for kinds in finalists {
        let hierarchy = if kinds.len() == 3 {
            build_regular(&[2, 4])
        } else {
            build_regular(&[2])
        };
        assert_eq!(hierarchy.level_count(), kinds.len());
        let lock = Arc::new(
            DynClofLock::build_with(&hierarchy, kinds, ClofParams::default(), true)
                .expect("finalist builds"),
        );
        assert_eq!(
            lock.dispatch_tier(),
            DispatchTier::Monomorphized,
            "{} must resolve the fast tier",
            lock.name()
        );
        let threads = 4usize;
        let n = hierarchy.ncpus();
        let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
        let seeds = seed_batch(0xFA57_0000 ^ kinds.len() as u64, SEEDS_PER_CELL);
        let opts = StressOptions {
            threads,
            iters: ITERS,
            label: format!("fast:{}", lock.name()),
            ..StressOptions::default()
        };
        let lock2 = Arc::clone(&lock);
        let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| lock2.handle(cpus[tid]));
        outcome.assert_passed();
        assert_eq!(
            outcome.total_acquisitions,
            SEEDS_PER_CELL as u64 * threads as u64 * ITERS
        );
    }
}

/// Mixed dispatch tiers on ONE lock: half the threads use the
/// monomorphized handle, half the generic ablation handle. Both run the
/// identical protocol on the same shared nodes, so the oracle must see
/// no difference.
#[test]
fn oracle_mixed_tier_handles_on_one_lock() {
    let hierarchy = build_regular(&[2, 4]);
    let lock = Arc::new(
        DynClofLock::build(
            &hierarchy,
            &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        )
        .expect("finalist builds"),
    );
    let threads = 4usize;
    let n = hierarchy.ncpus();
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
    let seeds = seed_batch(0x3173_7E2E, 4);
    let opts = StressOptions {
        threads,
        iters: ITERS,
        label: "mixed-tier mcs-clh-tkt".into(),
        ..StressOptions::default()
    };
    let lock2 = Arc::clone(&lock);
    let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| {
        if tid % 2 == 0 {
            lock2.handle(cpus[tid])
        } else {
            lock2.handle_generic(cpus[tid])
        }
    });
    outcome.assert_passed();
    assert_eq!(
        outcome.total_acquisitions,
        4 * threads as u64 * ITERS
    );
}

/// Keep-local H-bound regression (schedule-fuzzed): `keep_local`'s
/// handover counter is owner-only (plain load + store under the low
/// lock), and that must still enforce the paper's bound — between two
/// releases-up a node passes locally at most `H - 1` times. Summed per
/// level: `passes ≤ (H-1) × (releases_up + cohorts)` (each cohort may
/// additionally be mid-streak at the end of the run).
#[test]
fn keep_local_owner_only_counter_respects_h_bound() {
    for h in [1u32, 2, 3] {
        let hierarchy = build_regular(&[2, 4]);
        let params = ClofParams {
            keep_local_threshold: h,
        };
        let kinds = vec![LockKind::Ticket; hierarchy.level_count()];
        let lock = Arc::new(
            DynClofLock::build_with(&hierarchy, &kinds, params, false).expect("builds"),
        );
        let threads = 4usize;
        let n = hierarchy.ncpus();
        // Two threads per leaf cohort so local passes actually happen.
        let cpus: Vec<usize> = (0..threads).map(|t| (t / 2) * (n / 2) + t % 2).collect();
        let seeds = seed_batch(0x48B0_0000 ^ h as u64, 3);
        let opts = StressOptions {
            threads,
            iters: 60,
            label: format!("H={h} bound"),
            ..StressOptions::default()
        };
        let lock2 = Arc::clone(&lock);
        let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| lock2.handle(cpus[tid]));
        outcome.assert_passed();
        for level in lock.stats() {
            let cohorts = hierarchy.cohort_count(level.level) as u64;
            let bound = (h as u64 - 1) * (level.releases_up + cohorts);
            assert!(
                level.passes <= bound,
                "H={h} level {} passes {} exceed bound {bound} ({:?})",
                level.level,
                level.passes,
                level
            );
        }
    }
}

/// Bounded acquisition gap for a fair composition: with a small
/// keep-local threshold, no thread waits through more than a small
/// multiple of `threads × H` foreign acquisitions. (The gap is measured
/// end-to-end, so the bound carries slack for time spent outside the
/// queue; it is a starvation tripwire, not a FIFO proof.)
#[test]
fn fair_composition_gap_is_bounded() {
    let hierarchy = build_regular(&[2, 4]);
    let params = ClofParams {
        keep_local_threshold: 2,
    };
    let kinds = vec![LockKind::Ticket; hierarchy.level_count()];
    let lock = Arc::new(
        DynClofLock::build_with(&hierarchy, &kinds, params, false).expect("fair composition"),
    );
    let threads = 4usize;
    let cpus: Vec<usize> = (0..threads).map(|t| t * hierarchy.ncpus() / threads).collect();
    let opts = StressOptions {
        threads,
        iters: 80,
        seed: 0xFA1B_0C50,
        chaos_denom: 0, // pure scheduling; chaos would stretch gaps artificially
        max_gap: Some(64),
        label: "tkt-tkt gap bound".into(),
        ..StressOptions::default()
    };
    let report = run_stress(&opts, |tid| lock.handle(cpus[tid]));
    assert!(report.passed(), "{}", report.render());
}

// ---------------------------------------------------------------------
// Migration oracle: the epoch/quiescence handover of `clof::adapt` must
// uphold every oracle invariant while the lock is hot-swapped mid-run.
// 64 seeds total across the three tests below (32 + 24 + 8), each seed
// running a fresh `AdaptiveLock` under chaos with a background swapper
// cycling compositions, so flips land in every phase of the acquire/
// release loop. The checks are the same as for a static lock — mutual
// exclusion, torn counters, lost updates, §4.1 context invariant —
// which is the point: a migration must be invisible to correctness.
// ---------------------------------------------------------------------

use clof::adapt::AdaptiveLock;
use clof_testkit::{fuzz_swap_seeds, SwapPlan};

/// Seeds per (shape, threads) migration cell.
const SWAP_SEEDS_PER_CELL: usize = 4;

/// Runs one migration-matrix cell: `SWAP_SEEDS_PER_CELL` fuzzed runs of
/// a fresh adaptive lock starting as `shape`, with the swapper cycling
/// `shape ↔ partner` throughout.
fn migration_cell(
    hierarchy: &Hierarchy,
    shape: &[LockKind],
    partner: &[LockKind],
    threads: usize,
    seed_base: u64,
) -> u64 {
    let n = hierarchy.ncpus();
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
    let seeds = seed_batch(seed_base, SWAP_SEEDS_PER_CELL);
    // Small keep-local threshold so release-up (the baton hand-off
    // edge's hard case) happens constantly, not once per H streak.
    let params = ClofParams {
        keep_local_threshold: 4,
    };
    let opts = StressOptions {
        threads,
        iters: ITERS,
        label: format!(
            "adapt:{}↔{}×{}t",
            clof::composition_name(shape),
            clof::composition_name(partner),
            threads
        ),
        ..StressOptions::default()
    };
    let plan = SwapPlan {
        shapes: vec![partner.to_vec(), shape.to_vec()],
        pause_yields: 8,
        max_swaps: 0,
    };
    let outcome = fuzz_swap_seeds(
        &opts,
        &seeds,
        &plan,
        |_seed| {
            Arc::new(
                AdaptiveLock::with_params(hierarchy, shape, params, true)
                    .expect("adaptive lock builds"),
            )
        },
        |_seed, tid| cpus[tid],
    );
    outcome.assert_passed();
    assert_eq!(
        outcome.total_acquisitions,
        SWAP_SEEDS_PER_CELL as u64 * threads as u64 * ITERS,
        "every critical section must survive the migrations"
    );
    outcome.total_swaps
}

/// 3-level block of the migration matrix: 4 finalist shapes × {4,8}
/// threads × 4 seeds = 32 seeds.
#[test]
fn migration_oracle_matrix_three_level() {
    let shapes: [&[LockKind]; 4] = [
        &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Clh, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Clh, LockKind::Hemlock],
        &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
    ];
    let hierarchy = build_regular(&[2, 4]);
    let mut swaps = 0;
    for (i, shape) in shapes.iter().enumerate() {
        let partner = shapes[(i + 1) % shapes.len()];
        for threads in [4usize, 8] {
            swaps += migration_cell(
                &hierarchy,
                shape,
                partner,
                threads,
                0xAD47_3000 ^ (i as u64) << 8 ^ threads as u64,
            );
        }
    }
    assert!(swaps > 0, "the matrix must exercise real migrations");
}

/// 2-level block: 3 finalist shapes × {4,8} threads × 4 seeds = 24.
#[test]
fn migration_oracle_matrix_two_level() {
    let shapes: [&[LockKind]; 3] = [
        &[LockKind::Ticket, LockKind::Ticket],
        &[LockKind::Mcs, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Ticket],
    ];
    let hierarchy = build_regular(&[2]);
    let mut swaps = 0;
    for (i, shape) in shapes.iter().enumerate() {
        let partner = shapes[(i + 1) % shapes.len()];
        for threads in [4usize, 8] {
            swaps += migration_cell(
                &hierarchy,
                shape,
                partner,
                threads,
                0xAD47_2000 ^ (i as u64) << 8 ^ threads as u64,
            );
        }
    }
    assert!(swaps > 0, "the matrix must exercise real migrations");
}

/// Cross-dispatch-tier block (8 seeds): migrating between a shape the
/// fast tier monomorphizes and one only the generic enum tree can run.
/// Per-generation handles must follow the tier change both ways.
#[test]
fn migration_oracle_cross_tier() {
    use clof::DispatchTier;
    let hierarchy = build_regular(&[2, 4]);
    let fast: &[LockKind] = &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket];
    let generic: &[LockKind] = &[LockKind::Hemlock, LockKind::Hemlock, LockKind::Hemlock];
    let probe = |kinds: &[LockKind]| {
        DynClofLock::build_with(&hierarchy, kinds, ClofParams::default(), true)
            .expect("shape builds")
            .dispatch_tier()
    };
    assert_eq!(probe(fast), DispatchTier::Monomorphized);
    assert_eq!(probe(generic), DispatchTier::Generic);

    let threads = 8usize;
    let n = hierarchy.ncpus();
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
    let seeds = seed_batch(0xAD47_71E2, 8);
    let opts = StressOptions {
        threads,
        iters: ITERS,
        label: "adapt:cross-tier".into(),
        ..StressOptions::default()
    };
    let plan = SwapPlan {
        shapes: vec![generic.to_vec(), fast.to_vec()],
        pause_yields: 8,
        max_swaps: 0,
    };
    let outcome = fuzz_swap_seeds(
        &opts,
        &seeds,
        &plan,
        |_seed| Arc::new(AdaptiveLock::new(&hierarchy, fast).expect("adaptive lock builds")),
        |_seed, tid| cpus[tid],
    );
    outcome.assert_passed();
    assert_eq!(outcome.total_acquisitions, 8 * threads as u64 * ITERS);
    assert!(outcome.total_swaps > 0, "tier crossings must actually happen");
}

/// Fairness across handover epochs: with chaos off and a small H, the
/// acquisition gap stays bounded even while the lock migrates under the
/// workers — a migration may reshuffle queue order once, not starve a
/// thread. The bound is a tripwire with slack for the reshuffles, not a
/// FIFO proof (cf. `fair_composition_gap_is_bounded`).
#[test]
fn migration_keeps_the_gap_bounded() {
    let hierarchy = build_regular(&[2, 4]);
    let params = ClofParams {
        keep_local_threshold: 2,
    };
    let shape: &[LockKind] = &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket];
    let partner: &[LockKind] = &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket];
    let threads = 4usize;
    let cpus: Vec<usize> = (0..threads).map(|t| t * hierarchy.ncpus() / threads).collect();
    let opts = StressOptions {
        threads,
        iters: 80,
        chaos_denom: 0, // pure scheduling; chaos would stretch gaps artificially
        max_gap: Some(128),
        label: "adapt:gap bound".into(),
        ..StressOptions::default()
    };
    let plan = SwapPlan {
        shapes: vec![partner.to_vec(), shape.to_vec()],
        pause_yields: 16,
        max_swaps: 4,
    };
    let outcome = fuzz_swap_seeds(
        &opts,
        &seed_batch(0xFA1B_AD47, 4),
        &plan,
        |_seed| {
            Arc::new(
                AdaptiveLock::with_params(&hierarchy, shape, params, false)
                    .expect("fair adaptive lock"),
            )
        },
        |_seed, tid| cpus[tid],
    );
    outcome.assert_passed();
}

/// End-to-end acceptance: a deliberately broken lock is caught within a
/// 16-seed budget and the failure names a replayable seed.
#[test]
fn broken_lock_is_caught_with_replayable_seed() {
    let lock = Arc::new(BrokenTas::default());
    let seeds = seed_batch(0xDEAD_10CC, 16);
    let opts = StressOptions {
        threads: 4,
        iters: 40,
        label: "broken-tas".into(),
        ..StressOptions::default()
    };
    let outcome = fuzz_seeds(&opts, &seeds, |_seed, _tid| RawHandle::new(&lock));
    let report = outcome
        .failure
        .expect("the oracle must catch a lock with no atomic RMW");
    let rendered = report.render();
    assert!(
        rendered.contains("replay with seed 0x"),
        "failure report must name its seed:\n{rendered}"
    );
}
