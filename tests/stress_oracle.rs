//! Schedule-fuzzed stress-oracle matrix over composed locks: every
//! `LockKind` × {2,3}-level hierarchy × {4,8} threads, 64 seeds total
//! (2 per matrix cell), with chaos injection inside the lock paths.
//!
//! Asserted per run: mutual exclusion (owner cell + torn-counter pair),
//! the paper's §4.1 context invariant (the `testkit`-gated `ctx_busy`
//! detector panics inside acquire/release and the oracle converts that
//! into a violation), and — in the dedicated fairness test — a bounded
//! acquisition gap. A failing run prints its seed; replay by running the
//! same test again (the matrix is deterministic) and grepping for that
//! seed, or by driving `run_stress` with it directly.

use std::sync::Arc;

use clof::{ClofParams, DynClofLock, LockKind};
use clof_testkit::oracle::mutants::BrokenTas;
use clof_testkit::strategies::build_regular;
use clof_testkit::{fuzz_seeds, run_stress, seed_batch, RawHandle, StressOptions};
use clof_topology::Hierarchy;

/// 2 seeds per (kind, hierarchy, threads) cell; 8 kinds × 2 × 2 × 2 = 64.
const SEEDS_PER_CELL: usize = 2;
const ITERS: u64 = 25;

fn hierarchies() -> Vec<Hierarchy> {
    vec![
        build_regular(&[2, 4]),    // 2 levels, 8 CPUs
        build_regular(&[2, 4, 8]), // 3 levels, 16 CPUs
    ]
}

/// Runs the full {hierarchy} × {threads} × {seeds} cell block for one
/// leaf-to-root homogeneous composition of `kind`.
fn oracle_matrix(kind: LockKind) {
    for hierarchy in hierarchies() {
        let kinds = vec![kind; hierarchy.level_count()];
        // Unfair kinds are deliberately included: the oracle checks
        // mutual exclusion and the context invariant for them too (only
        // fairness is out of scope for ttas/bo).
        let lock = Arc::new(
            DynClofLock::build_with(&hierarchy, &kinds, ClofParams::default(), true)
                .expect("composition builds"),
        );
        for threads in [4usize, 8] {
            let n = hierarchy.ncpus();
            let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
            let seeds = seed_batch(
                0xC10F_0000 ^ (kind as u64) << 8 ^ (hierarchy.level_count() as u64) << 4
                    ^ threads as u64,
                SEEDS_PER_CELL,
            );
            let opts = StressOptions {
                threads,
                iters: ITERS,
                label: format!("{}×{}lvl×{}t", lock.name(), hierarchy.level_count(), threads),
                ..StressOptions::default()
            };
            let lock = Arc::clone(&lock);
            let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| lock.handle(cpus[tid]));
            outcome.assert_passed();
            assert_eq!(
                outcome.total_acquisitions,
                SEEDS_PER_CELL as u64 * threads as u64 * ITERS
            );
        }
    }
}

#[test]
fn oracle_matrix_ticket() {
    oracle_matrix(LockKind::Ticket);
}

#[test]
fn oracle_matrix_mcs() {
    oracle_matrix(LockKind::Mcs);
}

#[test]
fn oracle_matrix_clh() {
    oracle_matrix(LockKind::Clh);
}

#[test]
fn oracle_matrix_hemlock() {
    oracle_matrix(LockKind::Hemlock);
}

#[test]
fn oracle_matrix_hemlock_ctr() {
    oracle_matrix(LockKind::HemlockCtr);
}

#[test]
fn oracle_matrix_anderson() {
    oracle_matrix(LockKind::Anderson);
}

#[test]
fn oracle_matrix_ttas() {
    oracle_matrix(LockKind::Ttas);
}

#[test]
fn oracle_matrix_backoff() {
    oracle_matrix(LockKind::Backoff);
}

/// Schedule-fuzzed matrix over the monomorphized finalist compositions:
/// the fast dispatch tier must uphold the same oracle invariants as the
/// generic enum tree it replicates, on both hierarchy depths.
#[test]
fn oracle_matrix_monomorphized_finalists() {
    use clof::DispatchTier;
    let finalists: [&[LockKind]; 7] = [
        &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Clh, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Clh, LockKind::Hemlock],
        &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
        &[LockKind::Ticket, LockKind::Ticket],
        &[LockKind::Mcs, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Ticket],
    ];
    for kinds in finalists {
        let hierarchy = if kinds.len() == 3 {
            build_regular(&[2, 4])
        } else {
            build_regular(&[2])
        };
        assert_eq!(hierarchy.level_count(), kinds.len());
        let lock = Arc::new(
            DynClofLock::build_with(&hierarchy, kinds, ClofParams::default(), true)
                .expect("finalist builds"),
        );
        assert_eq!(
            lock.dispatch_tier(),
            DispatchTier::Monomorphized,
            "{} must resolve the fast tier",
            lock.name()
        );
        let threads = 4usize;
        let n = hierarchy.ncpus();
        let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
        let seeds = seed_batch(0xFA57_0000 ^ kinds.len() as u64, SEEDS_PER_CELL);
        let opts = StressOptions {
            threads,
            iters: ITERS,
            label: format!("fast:{}", lock.name()),
            ..StressOptions::default()
        };
        let lock2 = Arc::clone(&lock);
        let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| lock2.handle(cpus[tid]));
        outcome.assert_passed();
        assert_eq!(
            outcome.total_acquisitions,
            SEEDS_PER_CELL as u64 * threads as u64 * ITERS
        );
    }
}

/// Mixed dispatch tiers on ONE lock: half the threads use the
/// monomorphized handle, half the generic ablation handle. Both run the
/// identical protocol on the same shared nodes, so the oracle must see
/// no difference.
#[test]
fn oracle_mixed_tier_handles_on_one_lock() {
    let hierarchy = build_regular(&[2, 4]);
    let lock = Arc::new(
        DynClofLock::build(
            &hierarchy,
            &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        )
        .expect("finalist builds"),
    );
    let threads = 4usize;
    let n = hierarchy.ncpus();
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
    let seeds = seed_batch(0x3173_7E2E, 4);
    let opts = StressOptions {
        threads,
        iters: ITERS,
        label: "mixed-tier mcs-clh-tkt".into(),
        ..StressOptions::default()
    };
    let lock2 = Arc::clone(&lock);
    let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| {
        if tid % 2 == 0 {
            lock2.handle(cpus[tid])
        } else {
            lock2.handle_generic(cpus[tid])
        }
    });
    outcome.assert_passed();
    assert_eq!(
        outcome.total_acquisitions,
        4 * threads as u64 * ITERS
    );
}

/// Keep-local H-bound regression (schedule-fuzzed): `keep_local`'s
/// handover counter is owner-only (plain load + store under the low
/// lock), and that must still enforce the paper's bound — between two
/// releases-up a node passes locally at most `H - 1` times. Summed per
/// level: `passes ≤ (H-1) × (releases_up + cohorts)` (each cohort may
/// additionally be mid-streak at the end of the run).
#[test]
fn keep_local_owner_only_counter_respects_h_bound() {
    for h in [1u32, 2, 3] {
        let hierarchy = build_regular(&[2, 4]);
        let params = ClofParams {
            keep_local_threshold: h,
        };
        let kinds = vec![LockKind::Ticket; hierarchy.level_count()];
        let lock = Arc::new(
            DynClofLock::build_with(&hierarchy, &kinds, params, false).expect("builds"),
        );
        let threads = 4usize;
        let n = hierarchy.ncpus();
        // Two threads per leaf cohort so local passes actually happen.
        let cpus: Vec<usize> = (0..threads).map(|t| (t / 2) * (n / 2) + t % 2).collect();
        let seeds = seed_batch(0x48B0_0000 ^ h as u64, 3);
        let opts = StressOptions {
            threads,
            iters: 60,
            label: format!("H={h} bound"),
            ..StressOptions::default()
        };
        let lock2 = Arc::clone(&lock);
        let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| lock2.handle(cpus[tid]));
        outcome.assert_passed();
        for level in lock.stats() {
            let cohorts = hierarchy.cohort_count(level.level) as u64;
            let bound = (h as u64 - 1) * (level.releases_up + cohorts);
            assert!(
                level.passes <= bound,
                "H={h} level {} passes {} exceed bound {bound} ({:?})",
                level.level,
                level.passes,
                level
            );
        }
    }
}

/// Bounded acquisition gap for a fair composition: with a small
/// keep-local threshold, no thread waits through more than a small
/// multiple of `threads × H` foreign acquisitions. (The gap is measured
/// end-to-end, so the bound carries slack for time spent outside the
/// queue; it is a starvation tripwire, not a FIFO proof.)
#[test]
fn fair_composition_gap_is_bounded() {
    let hierarchy = build_regular(&[2, 4]);
    let params = ClofParams {
        keep_local_threshold: 2,
    };
    let kinds = vec![LockKind::Ticket; hierarchy.level_count()];
    let lock = Arc::new(
        DynClofLock::build_with(&hierarchy, &kinds, params, false).expect("fair composition"),
    );
    let threads = 4usize;
    let cpus: Vec<usize> = (0..threads).map(|t| t * hierarchy.ncpus() / threads).collect();
    let opts = StressOptions {
        threads,
        iters: 80,
        seed: 0xFA1B_0C50,
        chaos_denom: 0, // pure scheduling; chaos would stretch gaps artificially
        max_gap: Some(64),
        label: "tkt-tkt gap bound".into(),
        ..StressOptions::default()
    };
    let report = run_stress(&opts, |tid| lock.handle(cpus[tid]));
    assert!(report.passed(), "{}", report.render());
}

/// End-to-end acceptance: a deliberately broken lock is caught within a
/// 16-seed budget and the failure names a replayable seed.
#[test]
fn broken_lock_is_caught_with_replayable_seed() {
    let lock = Arc::new(BrokenTas::default());
    let seeds = seed_batch(0xDEAD_10CC, 16);
    let opts = StressOptions {
        threads: 4,
        iters: 40,
        label: "broken-tas".into(),
        ..StressOptions::default()
    };
    let outcome = fuzz_seeds(&opts, &seeds, |_seed, _tid| RawHandle::new(&lock));
    let report = outcome
        .failure
        .expect("the oracle must catch a lock with no atomic RMW");
    let rendered = report.render();
    assert!(
        rendered.contains("replay with seed 0x"),
        "failure report must name its seed:\n{rendered}"
    );
}
