//! The paper's headline quantitative *shapes*, asserted against the
//! simulator (see EXPERIMENTS.md for the full tables):
//!
//! * multi-level beats NUMA-oblivious at high contention (Fig. 2);
//! * deeper hierarchies beat shallower ones once their levels activate
//!   (Fig. 2: HMCS⟨4⟩ > HMCS⟨2⟩);
//! * the best CLoF lock beats the equivalently configured HMCS (Fig. 9);
//! * CNA/ShflLock trail far behind multi-level locks at high contention
//!   (Fig. 4/10);
//! * Ticketlock at the NUMA level wrecks any composition (§5.2.2);
//! * cross-platform "best" locks underperform native ones (Fig. 10).

use clof::{rank, scripted_benchmark, LockKind, Policy};
use clof_sim::engine::RunOptions;
use clof_sim::workload::placement;
use clof_sim::{Machine, ModelSpec, Workload};
use clof_topology::platforms;

fn opts() -> RunOptions {
    RunOptions {
        duration_ns: 6_000_000,
        warmup_ns: 600_000,
        seed: 3,
    }
}

fn tp(machine: &Machine, spec: &ModelSpec, threads: usize) -> f64 {
    let cpus = placement::compact(machine, threads);
    clof_sim::run(machine, spec, &cpus, Workload::leveldb_readrandom(), opts())
        .throughput_per_us()
}

#[test]
fn multilevel_beats_flat_mcs_at_high_contention() {
    let machine = Machine::paper_x86().with_hierarchy(platforms::paper_x86_4level());
    let full = Machine::paper_x86();
    let hmcs4 = tp(&machine, &ModelSpec::hmcs(machine.hierarchy.clone()), 95);
    let mcs = tp(&full, &ModelSpec::basic(LockKind::Mcs, full.ncpus()), 95);
    assert!(
        hmcs4 > 1.8 * mcs,
        "paper Fig. 2: HMCS<4> ~2.5x MCS at 95 threads; got {hmcs4:.3} vs {mcs:.3}"
    );
}

#[test]
fn deeper_hierarchies_win_once_levels_activate() {
    let full = Machine::paper_x86();
    let h2 = full.with_hierarchy(full.hierarchy.select_levels(&["numa"]).unwrap());
    let h4 = full.with_hierarchy(platforms::paper_x86_4level());
    let hmcs2 = tp(&h2, &ModelSpec::hmcs(h2.hierarchy.clone()), 95);
    let hmcs4 = tp(&h4, &ModelSpec::hmcs(h4.hierarchy.clone()), 95);
    assert!(
        hmcs4 > 1.3 * hmcs2,
        "the cache-group level must pay off (Fig. 2): {hmcs4:.3} vs {hmcs2:.3}"
    );
}

#[test]
fn best_clof_beats_hmcs_and_worst_contains_numa_ticket() {
    // Armv8, 4-level, all 256 locks — the Fig. 9b structure.
    let machine = Machine::paper_armv8().with_hierarchy(platforms::paper_armv8_4level());
    let hierarchy = machine.hierarchy.clone();
    let combos = clof::compositions(&LockKind::PAPER_ARM, hierarchy.level_count());
    let grid = [8usize, 64, 127];
    let results = scripted_benchmark(&combos, &grid, |combo, threads| {
        tp(&machine, &ModelSpec::clof(hierarchy.clone(), combo), threads)
    });
    let hc = rank(&results, Policy::HighContention);
    let best = hc.best();
    let worst = hc.worst();

    let hmcs = tp(&machine, &ModelSpec::hmcs(hierarchy.clone()), 127);
    let best_at_max = best.points.last().unwrap().1;
    assert!(
        best_at_max > hmcs,
        "best CLoF ({}) must beat HMCS<4>: {best_at_max:.3} vs {hmcs:.3}",
        best.name()
    );

    // §5.2.2: "the worst CLoF lock uses the Ticketlock at the NUMA level".
    assert_eq!(
        worst.composition[1],
        LockKind::Ticket,
        "worst composition was {}",
        worst.name()
    );
    // ... and the best one does not.
    assert_ne!(best.composition[1], LockKind::Ticket);
}

#[test]
fn cna_and_shfllock_trail_multilevel_locks() {
    let full = Machine::paper_armv8();
    let h4 = full.with_hierarchy(platforms::paper_armv8_4level());
    let hmcs = tp(&h4, &ModelSpec::hmcs(h4.hierarchy.clone()), 127);
    let cna = tp(&full, &ModelSpec::cna(&full), 127);
    let shfl = tp(&full, &ModelSpec::shfl(&full), 127);
    assert!(hmcs > 1.2 * cna, "HMCS<4> {hmcs:.3} vs CNA {cna:.3}");
    assert!(hmcs > 1.2 * shfl, "HMCS<4> {hmcs:.3} vs ShflLock {shfl:.3}");
    // CNA/ShflLock do beat flat MCS once contention crosses NUMA (Fig 4).
    let mcs = tp(&full, &ModelSpec::basic(LockKind::Mcs, full.ncpus()), 127);
    assert!(cna > mcs, "CNA {cna:.3} must beat MCS {mcs:.3} at 127 threads");
}

#[test]
fn hem_ctr_poisons_armv8_compositions() {
    let machine = Machine::paper_armv8().with_hierarchy(platforms::paper_armv8_3level());
    let h = machine.hierarchy.clone();
    let good = tp(
        &machine,
        &ModelSpec::clof(h.clone(), &[LockKind::Ticket, LockKind::Clh, LockKind::Ticket]),
        64,
    );
    let poisoned = tp(
        &machine,
        &ModelSpec::clof(
            h.clone(),
            &[LockKind::Ticket, LockKind::HemlockCtr, LockKind::Ticket],
        ),
        64,
    );
    assert!(
        poisoned < 0.3 * good,
        "CTR at any Armv8 level must collapse the lock: {poisoned:.3} vs {good:.3}"
    );
}

#[test]
fn cross_platform_best_is_not_better_than_native() {
    // Fig. 10's cross-platform point, with the paper's own compositions:
    // x86's 3-level LC-best (tkt-mcs-mcs) on Armv8 vs Armv8's native
    // (tkt-clh-tkt).
    let machine = Machine::paper_armv8().with_hierarchy(platforms::paper_armv8_3level());
    let h = machine.hierarchy.clone();
    let native = tp(
        &machine,
        &ModelSpec::clof(h.clone(), &[LockKind::Ticket, LockKind::Clh, LockKind::Ticket]),
        127,
    );
    let cross = tp(
        &machine,
        &ModelSpec::clof(h.clone(), &[LockKind::Ticket, LockKind::Mcs, LockKind::Mcs]),
        127,
    );
    assert!(
        native >= cross,
        "native tkt-clh-tkt {native:.3} must not lose to x86's tkt-mcs-mcs {cross:.3}"
    );
}

#[test]
fn kyoto_cabinet_cross_validates_leveldb_ranking() {
    // Fig. 10: the LevelDB-selected lock also wins under Kyoto Cabinet.
    let machine = Machine::paper_armv8().with_hierarchy(platforms::paper_armv8_4level());
    let h = machine.hierarchy.clone();
    let kinds = [
        LockKind::Ticket,
        LockKind::Clh,
        LockKind::Ticket,
        LockKind::Ticket,
    ];
    let cpus = placement::compact(&machine, 127);
    let wl = Workload::kyoto_cabinet();
    let clof =
        clof_sim::run(&machine, &ModelSpec::clof(h.clone(), &kinds), &cpus, wl, opts())
            .throughput_per_us();
    let full = Machine::paper_armv8();
    let cna = clof_sim::run(&full, &ModelSpec::cna(&full), &cpus, wl, opts())
        .throughput_per_us();
    assert!(
        clof > cna,
        "Kyoto: CLoF<4>-Arm {clof:.4} must beat CNA {cna:.4}"
    );
}
