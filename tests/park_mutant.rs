//! Mutant-kill suite for the park/wake protocol: delete the
//! releaser-side wake and prove the stall detector catches it.
//!
//! The mutant (`clof_locks::park::mutant::skip_wake`) makes every
//! releaser publish its condition but skip the epoch bump *and* the
//! futex wake — the classic lost-wakeup bug class. Test builds park
//! with a bounded timeout, and a waiter whose timed wait expires with
//! its condition already true while the process-wide wake counter never
//! moved records a **timeout rescue**; enough rescues panic with a
//! `clof-park stall` message. This file asserts both edges: armed, the
//! mutant dies by that panic within one hand-off; disarmed, the same
//! scenario completes with zero rescues.
//!
//! One `#[test]` on purpose: the mutant switch and the stall bound are
//! process-global, so phases must run serially in their own binary.

#![cfg(feature = "park")]

use std::sync::Arc;
use std::time::{Duration, Instant};

use clof::{DynClofLock, LockKind};
use clof_locks::park;
use clof_testkit::strategies::build_regular;

/// Waits (bounded) until the process-wide park counter moves past
/// `baseline`, i.e. the victim thread has actually blocked.
fn await_park(baseline: u64) {
    let t0 = Instant::now();
    while park::parks() <= baseline {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "victim never parked (parks still {})",
            park::parks()
        );
        std::thread::yield_now();
    }
}

#[test]
fn deleted_wake_mutant_is_caught_by_stall_panic() {
    if !park::has_native_futex() {
        // The portable fallback parks with a timeout and wakes by
        // itself, so the rescue detector has no missing-wake evidence
        // to act on there.
        eprintln!("skipping: no native futex on this platform");
        return;
    }

    let hierarchy = build_regular(&[2]);
    let lock = Arc::new(
        DynClofLock::build(&hierarchy, &[LockKind::Ticket, LockKind::Ticket])
            .expect("composition builds"),
    );
    // Zero budget: the victim parks on its first contended acquire.
    for level in 0..2 {
        lock.set_spin_budget(level, 0);
    }

    // Phase 1 — mutant armed: holder publishes the grant but the wake
    // is deleted; the parked victim's very first timeout rescue must
    // panic (bound 1) with the stall message.
    park::testkit::set_stall_bound(1);
    park::mutant::skip_wake(true);

    let mut holder = lock.handle(0);
    holder.acquire();
    let parks_before = park::parks();
    let victim = {
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            let mut h = lock.handle(1);
            h.acquire();
            h.release();
        })
    };
    await_park(parks_before);
    holder.release(); // grant published, wake deleted

    let outcome = victim.join();
    // Disarm before asserting, so a failure here can't poison later runs.
    park::mutant::skip_wake(false);
    park::testkit::set_stall_bound(park::testkit::DEFAULT_STALL_BOUND);
    park::testkit::reset_rescues();

    let payload = outcome.expect_err("deleted-wake mutant must be caught by the stall panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("clof-park stall"),
        "stall panic must name the bug class, got: {msg:?}"
    );

    // Phase 2 — control, mutant disarmed: the identical hand-off
    // completes through a real wake, with no timeout rescues. Fresh
    // lock: the mutant's victim unwound while holding its grant, so the
    // phase-1 lock is (correctly) wedged for good.
    let lock = Arc::new(
        DynClofLock::build(&hierarchy, &[LockKind::Ticket, LockKind::Ticket])
            .expect("composition builds"),
    );
    for level in 0..2 {
        lock.set_spin_budget(level, 0);
    }
    let mut holder = lock.handle(0);
    holder.acquire();
    let parks_before = park::parks();
    let wakes_before = park::wakes();
    let victim = {
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            let mut h = lock.handle(1);
            h.acquire();
            h.release();
        })
    };
    await_park(parks_before);
    holder.release();
    victim.join().expect("wake path must complete cleanly");
    assert!(
        park::wakes() > wakes_before,
        "releaser must issue a wake for a parked waiter"
    );
    assert_eq!(
        park::testkit::rescues(),
        0,
        "a healthy hand-off must not need timeout rescues"
    );
}
