//! Cross-crate lock stress: every lock family guarding the same store,
//! and compositions exercised on the paper hierarchies with real threads.

use std::sync::Arc;

use clof::{DynClofLock, LockKind};
use clof_kvstore::{CabinetDb, LockChoice, MiniDb, MiniDbOptions};
use clof_topology::platforms;

fn hammer_lock(lock: Arc<DynClofLock>, cpus: &[usize], iters: usize) -> usize {
    let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut threads = Vec::new();
    for &cpu in cpus {
        let lock = Arc::clone(&lock);
        let counter = Arc::clone(&counter);
        threads.push(std::thread::spawn(move || {
            let mut handle = lock.handle(cpu);
            for _ in 0..iters {
                handle.acquire();
                let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                handle.release();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    counter.load(std::sync::atomic::Ordering::Relaxed)
}

#[test]
fn all_heterogeneous_3level_compositions_on_tiny() {
    // Every pairwise-heterogeneous 3-level composition of the fair set,
    // with threads spanning all cohorts: 64 compositions, each must
    // preserve mutual exclusion.
    let h = platforms::tiny();
    let combos = clof::compositions(&LockKind::PAPER_ARM, 3);
    assert_eq!(combos.len(), 64);
    for combo in combos {
        let lock = Arc::new(DynClofLock::build(&h, &combo).unwrap());
        let got = hammer_lock(lock, &[0, 3, 4, 7], 200);
        assert_eq!(got, 800, "{}", clof::composition_name(&combo));
    }
}

#[test]
fn deep_composition_on_paper_x86() {
    // The full 5-level x86 hierarchy (core/cache/numa/package/system).
    let h = platforms::paper_x86();
    let combo = [
        LockKind::HemlockCtr,
        LockKind::HemlockCtr,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Ticket,
    ];
    let lock = Arc::new(DynClofLock::build(&h, &combo).unwrap());
    // CPUs chosen to exercise every level boundary: HT sibling (0,48),
    // cache neighbour (1), NUMA neighbour (3), cross-package (24).
    let got = hammer_lock(lock, &[0, 48, 1, 3, 24, 72], 300);
    assert_eq!(got, 1800);
}

#[test]
fn minidb_consistent_under_all_lock_families() {
    let h = platforms::tiny();
    for choice in [
        LockChoice::Clof(vec![LockKind::Hemlock, LockKind::Clh, LockKind::Ticket]),
        LockChoice::Hmcs,
        LockChoice::Cna,
        LockChoice::Shfl,
        LockChoice::Std,
    ] {
        let db = Arc::new(MiniDb::open(&h, &choice, MiniDbOptions::default()).unwrap());
        let mut writers = Vec::new();
        for cpu in 0..4usize {
            let db = Arc::clone(&db);
            writers.push(std::thread::spawn(move || {
                let mut handle = db.handle(cpu * 2);
                for i in 0..250usize {
                    handle.put(
                        format!("{cpu}-{i}").into_bytes(),
                        vec![cpu as u8, i as u8],
                    );
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        let mut handle = db.handle(0);
        for cpu in 0..4usize {
            for i in (0..250usize).step_by(49) {
                assert_eq!(
                    handle.get(format!("{cpu}-{i}").as_bytes()),
                    Some(vec![cpu as u8, i as u8]),
                    "{choice:?}"
                );
            }
        }
    }
}

#[test]
fn cabinet_mixed_workload_under_clof() {
    let h = platforms::paper_armv8_3level();
    let db = Arc::new(
        CabinetDb::open(
            &h,
            &LockChoice::Clof(vec![LockKind::Ticket, LockKind::Clh, LockKind::Ticket]),
            256,
        )
        .unwrap(),
    );
    {
        let mut handle = db.handle(0);
        for i in 0..1000u64 {
            handle.set(i.to_be_bytes().to_vec(), vec![0]);
        }
    }
    let mut workers = Vec::new();
    for (i, cpu) in [0usize, 33, 66, 127].into_iter().enumerate() {
        let db = Arc::clone(&db);
        workers.push(std::thread::spawn(move || {
            db.handle(cpu).mixed_workload(2000, 1000, i as u64)
        }));
    }
    for w in workers {
        assert!(w.join().unwrap() > 0);
    }
    assert!(db.handle(0).len() >= 1000);
}

#[test]
fn static_and_dyn_compositions_agree_behaviourally() {
    use clof::compose::build3;
    use clof::ClofParams;
    use clof_locks::{ClhLock, McsLock, TicketLock};

    let h = platforms::tiny();
    let static_tree = Arc::new(
        build3::<McsLock, ClhLock, TicketLock>(&h, ClofParams::default()).unwrap(),
    );
    let dyn_lock = Arc::new(
        DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket]).unwrap(),
    );
    assert_eq!(static_tree.name(), dyn_lock.name());

    let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let mut threads = Vec::new();
    for cpu in 0..8usize {
        let counter = Arc::clone(&counter);
        if cpu % 2 == 0 {
            let tree = Arc::clone(&static_tree);
            threads.push(std::thread::spawn(move || {
                let mut handle = tree.handle(cpu);
                for _ in 0..400 {
                    handle.acquire();
                    let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                    counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    handle.release();
                }
            }));
        } else {
            let lock = Arc::clone(&dyn_lock);
            threads.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                for _ in 0..400 {
                    handle.acquire();
                    handle.release();
                }
            }));
        }
    }
    for t in threads {
        t.join().unwrap();
    }
    // Note: static and dyn trees are *different lock instances*; the
    // counter is only touched under the static tree. The dyn threads
    // exercise their own lock concurrently.
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 1600);
}
