//! Oversubscription stress-oracle matrix for the spin-then-park waiting
//! layer (`--features park`): finalist shapes × {2×, 4×} thread
//! oversubscription × chaos schedules × seeds.
//!
//! Asserted per run: mutual exclusion (the base oracle's owner cell and
//! torn-counter pair), **no lost wakeups** — the exact-acquisition-count
//! check doubles as a parked-waiter liveness proof, since a waiter whose
//! wake went missing never completes its iterations (and in test builds
//! the timed-wait rescue detector panics with `clof-park stall` first,
//! which the oracle converts into a violation) — and, in the dedicated
//! fairness test, a bounded acquisition gap measured end-to-end across
//! park/wake edges.

#![cfg(feature = "park")]

use std::sync::Arc;

use clof::{ClofParams, DynClofLock, LockKind};
use clof_locks::park;
use clof_testkit::strategies::build_regular;
use clof_testkit::{fuzz_seeds, run_stress, seed_batch, StressOptions};
use clof_topology::Hierarchy;

const SEEDS_PER_CELL: usize = 2;
const ITERS: u64 = 25;

/// Logical cores to oversubscribe against: at least 2 so "2×" means
/// real preemption pressure even on a single-CPU host, capped so the
/// 4× cell stays bounded on very wide machines.
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 8)
}

fn hierarchies() -> Vec<Hierarchy> {
    vec![
        build_regular(&[2, 4]),    // 2 levels, 8 CPUs
        build_regular(&[2, 4, 8]), // 3 levels, 16 CPUs
    ]
}

/// One matrix cell: `SEEDS_PER_CELL` chaos-fuzzed runs of `shape` on
/// `hierarchy` at `mult`× oversubscription.
fn oversub_cell(hierarchy: &Hierarchy, shape: &[LockKind], mult: usize, forced_park: bool) {
    // Pad shorter shapes to the hierarchy depth by repeating the root
    // kind (the paper's finalists are named leaf-to-root).
    let mut kinds: Vec<LockKind> = shape.to_vec();
    while kinds.len() < hierarchy.level_count() {
        kinds.push(*shape.last().expect("non-empty shape"));
    }
    kinds.truncate(hierarchy.level_count());
    let lock = Arc::new(
        DynClofLock::build_with(hierarchy, &kinds, ClofParams::default(), true)
            .expect("composition builds"),
    );
    if forced_park {
        // Zero spin budget: every contended wait parks immediately, so
        // the cell exercises the park/wake protocol on every hand-off.
        for level in 0..kinds.len() {
            lock.set_spin_budget(level, 0);
        }
    }
    let threads = mult * cores();
    let n = hierarchy.ncpus();
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads % n).collect();
    let seeds = seed_batch(
        0x9A4C_0000
            ^ (kinds.len() as u64) << 12
            ^ (mult as u64) << 8
            ^ (forced_park as u64) << 4
            ^ kinds[0] as u64,
        SEEDS_PER_CELL,
    );
    let opts = StressOptions {
        threads,
        iters: ITERS,
        label: format!(
            "{}×{}lvl×{mult}x{}",
            lock.name(),
            hierarchy.level_count(),
            if forced_park { "×forced-park" } else { "" }
        ),
        ..StressOptions::default()
    };
    let lock2 = Arc::clone(&lock);
    let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| lock2.handle(cpus[tid]));
    outcome.assert_passed();
    assert_eq!(
        outcome.total_acquisitions,
        SEEDS_PER_CELL as u64 * threads as u64 * ITERS,
        "lost wakeup: a parked waiter never finished ({})",
        opts.label
    );
}

#[test]
fn oversubscribed_matrix_mcs_clh_tkt() {
    for hierarchy in hierarchies() {
        for mult in [2usize, 4] {
            oversub_cell(
                &hierarchy,
                &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
                mult,
                false,
            );
        }
    }
}

#[test]
fn oversubscribed_matrix_tkt_tkt_tkt() {
    for hierarchy in hierarchies() {
        for mult in [2usize, 4] {
            oversub_cell(&hierarchy, &[LockKind::Ticket], mult, false);
        }
    }
}

#[test]
fn oversubscribed_matrix_heterogeneous_queue_shapes() {
    let hierarchy = build_regular(&[2, 4]);
    for shape in [
        &[LockKind::Clh, LockKind::Clh, LockKind::Hemlock][..],
        &[LockKind::Anderson, LockKind::Ttas, LockKind::Ticket][..],
    ] {
        for mult in [2usize, 4] {
            oversub_cell(&hierarchy, shape, mult, false);
        }
    }
}

/// Parked-waiter liveness under maximum park pressure: zero spin budget
/// forces every contended wait through the kernel-block path, so the
/// exact acquisition count proves every parked waiter observed its wake.
#[test]
fn forced_park_liveness_no_lost_wakeups() {
    let parks_before = park::parks();
    for hierarchy in hierarchies() {
        oversub_cell(
            &hierarchy,
            &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
            2,
            true,
        );
        oversub_cell(&hierarchy, &[LockKind::Ticket], 2, true);
    }
    assert!(
        park::parks() > parks_before,
        "zero-budget oversubscribed runs must actually park \
         (parks stayed at {parks_before})"
    );
}

/// Bounded acquisition gap across park/wake edges: a fair (all-ticket,
/// small-H) composition keeps its starvation tripwire even when every
/// waiter parks — a wake that skipped the next-in-line would show up as
/// an unbounded gap long before the stall detector fires.
#[test]
fn gap_bound_holds_across_park_wake_edges() {
    let hierarchy = build_regular(&[2, 4]);
    let params = ClofParams {
        keep_local_threshold: 2,
    };
    let kinds = vec![LockKind::Ticket; hierarchy.level_count()];
    let lock = Arc::new(
        DynClofLock::build_with(&hierarchy, &kinds, params, false).expect("fair composition"),
    );
    for level in 0..kinds.len() {
        lock.set_spin_budget(level, 0); // every contended wait parks
    }
    let threads = 2 * cores();
    let n = hierarchy.ncpus();
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads % n).collect();
    let opts = StressOptions {
        threads,
        iters: 60,
        seed: 0xFA1B_9A4C,
        chaos_denom: 0, // pure scheduling; chaos would stretch gaps artificially
        // End-to-end slack scaled to the thread count (park/wake adds
        // latency outside the queue, never extra foreign acquisitions).
        max_gap: Some(threads as u64 * 16),
        label: "tkt-tkt parked gap bound".into(),
        ..StressOptions::default()
    };
    let report = run_stress(&opts, |tid| lock.handle(cpus[tid]));
    assert!(report.passed(), "{}", report.render());
}

/// The topology-derived budgets are leaf-biased (leaf spins longest,
/// root parks soonest) and runtime-tunable, and the tuned values are
/// what the acquire path reads.
#[test]
fn budgets_are_leaf_biased_and_runtime_tunable() {
    let hierarchy = build_regular(&[2, 4]);
    let lock = DynClofLock::build(
        &hierarchy,
        &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
    )
    .expect("builds");
    let budgets = lock.spin_budgets();
    assert_eq!(budgets.len(), 3);
    for w in budgets.windows(2) {
        assert!(
            w[0].1 >= w[1].1,
            "budgets must not grow toward the root: {budgets:?}"
        );
    }
    assert!(
        budgets.iter().all(|&(_, b)| b != clof_locks::SPIN_FOREVER),
        "build must install finite topology budgets: {budgets:?}"
    );
    lock.set_spin_budget(1, 7);
    assert_eq!(lock.spin_budgets()[1], (1, 7));
}
