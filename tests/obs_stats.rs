//! Telemetry vs. oracle cross-check: runs the schedule-fuzzing stress
//! oracle over 2- and 3-level compositions with the `obs` feature on,
//! then holds the lock's own counters to the oracle's externally
//! counted totals via `clof-testkit`'s quiescent-counter invariants
//! (`assert_stats_consistent`), plus the histogram and event-ring
//! properties the counters imply:
//!
//! * acquire-latency histogram sample counts equal per-level acquires;
//! * the hold-time histogram counts every critical section once;
//! * drained pass events have monotone timestamps, name only non-root
//!   levels, and their total equals the non-root release decisions.
//!
//! Run with `cargo test --features obs --test obs_stats`.

#![cfg(feature = "obs")]

use std::sync::Arc;

use clof::obs::{render_json, render_prometheus, LevelSnapshot, LockSnapshot};
use clof::{ClofParams, DynClofLock, LockKind};
use clof_testkit::strategies::build_regular;
use clof_testkit::{assert_stats_consistent, fuzz_seeds, seed_batch, LevelTally, StressOptions};

/// Copies the telemetry snapshot into the testkit's plain-data tallies.
fn tallies(levels: &[LevelSnapshot]) -> Vec<LevelTally> {
    levels
        .iter()
        .map(|l| LevelTally {
            acquires: l.acquires,
            contended_acquires: l.contended_acquires,
            passes_taken: l.passes_taken,
            passes_declined: l.passes_declined,
            keep_local_resets: l.keep_local_resets,
            hist_count: l.acquire_ns.count,
        })
        .collect()
}

/// Fuzzes `kinds` over a regular hierarchy of `shape` and returns the
/// telemetry snapshot with the oracle's external acquisition total.
fn stressed_snapshot(
    kinds: &[LockKind],
    shape: &[usize],
    threads: usize,
    seeds: usize,
    iters: u64,
) -> (LockSnapshot, u64) {
    let hierarchy = build_regular(shape);
    let lock = Arc::new(
        DynClofLock::build_with(&hierarchy, kinds, ClofParams::default(), true)
            .expect("composition builds"),
    );
    let n = hierarchy.ncpus();
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
    let opts = StressOptions {
        threads,
        iters,
        label: format!("obs:{}", lock.name()),
        ..StressOptions::default()
    };
    let seeds = seed_batch(0x0B50_57A7 ^ kinds.len() as u64, seeds);
    let shared = Arc::clone(&lock);
    let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| shared.handle(cpus[tid]));
    outcome.assert_passed();
    (lock.obs_snapshot(), outcome.total_acquisitions)
}

#[test]
fn two_level_counters_match_oracle() {
    let (snap, total) = stressed_snapshot(
        &[LockKind::Ticket, LockKind::Ticket],
        &[4],
        4,
        4,
        40,
    );
    assert_eq!(snap.levels.len(), 2);
    assert!(total > 0);
    assert_stats_consistent(&tallies(&snap.levels), total);
    assert_eq!(
        snap.hold_ns.count, total,
        "hold-time histogram must count every critical section once"
    );
}

#[test]
fn three_level_mixed_counters_match_oracle() {
    let (snap, total) = stressed_snapshot(
        &[LockKind::Ticket, LockKind::Mcs, LockKind::Clh],
        &[2, 4],
        8,
        2,
        30,
    );
    assert_eq!(snap.levels.len(), 3);
    assert_stats_consistent(&tallies(&snap.levels), total);
    // tkt and mcs publish a waiter hint, so every release decision at
    // their (non-root) levels resolves through the hint fast path.
    for level in &snap.levels[..2] {
        assert_eq!(
            level.hint_fast_hits, level.acquires,
            "level {}: hinting low lock must skip the read-indicator on every release",
            level.level
        );
    }
}

#[test]
fn hintless_level_never_records_hint_hits() {
    let (snap, total) = stressed_snapshot(
        &[LockKind::Ttas, LockKind::Ticket],
        &[4],
        4,
        2,
        30,
    );
    assert_stats_consistent(&tallies(&snap.levels), total);
    assert_eq!(
        snap.levels[0].hint_fast_hits, 0,
        "ttas has no waiter hint; its level must fall back to the read-indicator"
    );
}

#[test]
fn snapshot_rendering_is_non_destructive() {
    // `obs_snapshot` reads the event ring without consuming it, so two
    // back-to-back snapshots at quiescence — and every export rendered
    // from them — are identical. Guards against a regression to the old
    // drain-on-read behaviour, where the first observer stole the trace.
    let hierarchy = build_regular(&[4]);
    let lock = Arc::new(
        DynClofLock::build_with(
            &hierarchy,
            &[LockKind::Ticket, LockKind::Ticket],
            ClofParams::default(),
            true,
        )
        .expect("composition builds"),
    );
    let opts = StressOptions {
        threads: 4,
        iters: 40,
        label: format!("obs-rerender:{}", lock.name()),
        ..StressOptions::default()
    };
    let seeds = seed_batch(0x5EED_0B5E, 2);
    let shared = Arc::clone(&lock);
    let cpus: Vec<usize> = (0..4).map(|t| t * hierarchy.ncpus() / 4).collect();
    fuzz_seeds(&opts, &seeds, |_seed, tid| shared.handle(cpus[tid])).assert_passed();

    let first = lock.obs_snapshot();
    let second = lock.obs_snapshot();
    assert_eq!(first.events.len(), second.events.len());
    assert_eq!(first.events_recorded, second.events_recorded);
    assert_eq!(first.events_dropped, second.events_dropped);
    assert_eq!(render_json(&first), render_json(&second));
    assert_eq!(render_prometheus(&first), render_prometheus(&second));
    assert_eq!(first.to_string(), second.to_string());
}

#[test]
fn ring_events_are_monotone_and_name_non_root_levels() {
    let (snap, _total) = stressed_snapshot(
        &[LockKind::Ticket, LockKind::Mcs, LockKind::Ticket],
        &[2, 4],
        8,
        2,
        30,
    );
    assert!(snap.events_recorded > 0, "contended run must log pass events");
    assert!(!snap.events.is_empty());
    // Every pass event is a non-root release decision, so the ring total
    // equals the non-root decision count.
    let decisions: u64 = snap.levels[..snap.levels.len() - 1]
        .iter()
        .map(|l| l.passes_taken + l.passes_declined)
        .sum();
    assert_eq!(snap.events_recorded, decisions);
    let root = (snap.levels.len() - 1) as u8;
    let mut prev = 0u64;
    for event in &snap.events {
        assert!(
            event.timestamp_ns >= prev,
            "drained events must be timestamp-ordered"
        );
        prev = event.timestamp_ns;
        assert!(event.level < root, "the root level takes no pass decision");
    }
    // The drain keeps at most the ring capacity; nothing is double-counted.
    assert!(snap.events.len() as u64 <= snap.events_recorded);
    assert_eq!(
        snap.events_dropped,
        snap.events_recorded - snap.events.len() as u64
    );
}
