//! Striped read-indicator oracle (paper §4.1.2): the per-cohort waiter
//! indicator is now striped across cache lines, and striping must never
//! introduce a *false negative* — a parked waiter that `has_waiters()`
//! cannot see. (False positives are tolerated by construction: a stale
//! positive only makes the owner release the high lock early, which is
//! the paper's documented staleness trade-off. A false negative would
//! strand a local waiter behind a released high lock.)
//!
//! Two layers: a model-based fuzz of `LevelMeta` itself — arbitrary
//! inc/dec sequences over arbitrary fan-ins checked against a counting
//! model — and a concurrency matrix over hintless low locks × hierarchy
//! depth × seeds, where a real parked waiter must be visible through
//! the real composition.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use clof::level::LevelMeta;
use clof::{ClofParams, DynClofLock, LockKind, MAX_WAITER_STRIPES};
use clof_testkit::gen::{vec_of, zip, Gen};
use clof_testkit::strategies::build_regular;
use clof_testkit::{props, tk_assert, tk_assert_eq, Config};

/// Generator: a fan-in between 1 and 32 (past the stripe cap).
fn fanin() -> Gen<usize> {
    Gen::from_fn(|rng| (rng.below(32) + 1) as usize)
}

/// Generator: a sequence of (slot, weight) waiter arrivals.
fn arrivals() -> Gen<Vec<(u32, u8)>> {
    vec_of(
        zip(
            Gen::from_fn(|rng| rng.below(64) as u32),
            Gen::from_fn(|rng| (rng.below(3) + 1) as u8),
        ),
        0,
        24,
    )
}

props! {
    config: Config::with_cases(64);

    /// Counting-model equivalence: after any interleaving of increments
    /// and decrements from arbitrary slots, `has_waiters` answers
    /// exactly "is any increment outstanding" and `waiter_count` equals
    /// the outstanding total. Slots beyond the stripe count must fold
    /// onto existing stripes without losing counts.
    fn striped_indicator_matches_counting_model(
        fanin in fanin(),
        seq in arrivals(),
    ) {
        let meta = LevelMeta::<()>::with_fanin(ClofParams::default(), fanin);
        tk_assert!(meta.stripe_count() <= MAX_WAITER_STRIPES);
        tk_assert!(meta.stripe_count() >= 1);
        tk_assert!(meta.stripe_count().is_power_of_two());

        let mut outstanding: u32 = 0;
        // Register all arrivals, checking visibility after each.
        for &(slot, weight) in &seq {
            for _ in 0..weight {
                meta.inc_waiters(slot);
                outstanding += 1;
                tk_assert!(meta.has_waiters(), "inc on slot {slot} invisible");
            }
            tk_assert_eq!(meta.waiter_count(), outstanding);
        }
        // Drain in the same slot order: dec must hit the same stripe
        // its inc used, so the count returns to zero exactly.
        for &(slot, weight) in &seq {
            for _ in 0..weight {
                tk_assert!(meta.has_waiters(), "outstanding {outstanding} invisible");
                meta.dec_waiters(slot);
                outstanding -= 1;
            }
            tk_assert_eq!(meta.waiter_count(), outstanding);
        }
        tk_assert!(!meta.has_waiters());
        tk_assert_eq!(meta.waiter_count(), 0);
    }
}

/// Parks a real waiter from `waiter_cpu` while `holder_cpu` holds the
/// composed lock, and returns the leaf indicator count observed while
/// the waiter is queued.
fn observed_count_while_parked(
    lock: &Arc<DynClofLock>,
    holder_cpu: usize,
    waiter_cpu: usize,
) -> u32 {
    let mut holder = lock.handle(holder_cpu);
    holder.acquire();
    let started = Arc::new(AtomicUsize::new(0));
    let waiter = {
        let lock = Arc::clone(lock);
        let started = Arc::clone(&started);
        std::thread::spawn(move || {
            let mut handle = lock.handle(waiter_cpu);
            started.store(1, Ordering::Release);
            handle.acquire();
            handle.release();
        })
    };
    while started.load(Ordering::Acquire) == 0 {
        std::thread::yield_now();
    }
    // Grace period for the waiter to register and park in the leaf's
    // low-lock acquire.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let count = lock.leaf_waiter_count(waiter_cpu);
    holder.release();
    waiter.join().unwrap();
    count
}

/// The concurrency matrix: hintless low kind × depth × stripe slot.
/// Every parked waiter must be visible, whichever stripe its CPU maps
/// to — a false negative here is exactly the bug striping could add.
#[test]
fn parked_waiter_never_invisible_across_matrix() {
    for low in [LockKind::Ttas, LockKind::Backoff] {
        for hierarchy in [build_regular(&[2, 4]), build_regular(&[2, 4, 8])] {
            let mut kinds = vec![low];
            kinds.extend(vec![LockKind::Ticket; hierarchy.level_count() - 1]);
            let lock = Arc::new(
                DynClofLock::build_with(&hierarchy, &kinds, ClofParams::default(), true)
                    .expect("composition builds"),
            );
            // Leaf cohorts have 2 CPUs on both shapes: exercise both
            // stripe slots as the waiter, in two different cohorts.
            for (holder, waiter) in [(1usize, 0usize), (0, 1), (3, 2), (2, 3)] {
                let count = observed_count_while_parked(&lock, holder, waiter);
                assert_eq!(
                    count, 1,
                    "{} waiter on cpu {waiter} invisible ({} levels)",
                    lock.name(),
                    hierarchy.level_count()
                );
            }
        }
    }
}

/// Same-stripe pile-up: several waiters from one CPU's stripe plus the
/// sibling's must all be counted (the stripes sum, not mask each other).
#[test]
fn multiple_parked_waiters_all_counted() {
    // Leaf cohorts of 2 CPUs plus the implicit system level.
    let hierarchy = build_regular(&[2]);
    let lock = Arc::new(
        DynClofLock::build_with(
            &hierarchy,
            &[LockKind::Ttas, LockKind::Ticket],
            ClofParams::default(),
            true,
        )
        .expect("composition builds"),
    );
    let mut holder = lock.handle(0);
    holder.acquire();
    let started = Arc::new(AtomicUsize::new(0));
    let mut waiters = Vec::new();
    // Two waiters on CPU 1's stripe, one more on CPU 0's stripe.
    for waiter_cpu in [1usize, 1, 0] {
        let lock = Arc::clone(&lock);
        let started = Arc::clone(&started);
        waiters.push(std::thread::spawn(move || {
            let mut handle = lock.handle(waiter_cpu);
            started.fetch_add(1, Ordering::Release);
            handle.acquire();
            handle.release();
        }));
    }
    while started.load(Ordering::Acquire) < 3 {
        std::thread::yield_now();
    }
    std::thread::sleep(std::time::Duration::from_millis(40));
    assert_eq!(lock.leaf_waiter_count(0), 3, "stripes must sum");
    holder.release();
    for w in waiters {
        w.join().unwrap();
    }
}
