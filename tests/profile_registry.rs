//! Registry lifecycle invariants for the contention profiler
//! (ISSUE 8, satellite 3): every lock construction registers exactly
//! one site, dropping the lock deregisters it, and an adaptation-swap
//! matrix over 64 seeded compositions keeps the site id stable while
//! leaking zero registry entries.
//!
//! The site registry is process-global, so tests in this binary
//! serialize on a static mutex and measure registry length as a delta
//! against a baseline taken under that lock — the absolute length
//! depends on which tests ran before.
//!
//! Run with `cargo test --features obs --test profile_registry`
//! (the swap-matrix test additionally needs `--features adapt,obs`).

#![cfg(feature = "obs")]

use std::sync::{Arc, Mutex, MutexGuard};

use clof::obs::registry;
use clof::{ClofParams, DynClofLock, FastClof, LockKind};
use clof_testkit::strategies::build_regular;

/// Serializes tests that observe the process-global registry.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn build_registers_and_drop_deregisters() {
    let _guard = serial();
    let baseline = registry::global().len();

    let hierarchy = build_regular(&[2, 4]);
    let lock = DynClofLock::build_with(
        &hierarchy,
        &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        ClofParams::default(),
        true,
    )
    .expect("composition builds");
    let line_after_build = line!(); // `#[track_caller]` names the build call above

    assert_eq!(registry::global().len(), baseline + 1, "one site per lock");
    let site = registry::global()
        .site(lock.site_id())
        .expect("site is live while the lock is");
    assert_eq!(site.label, lock.name());
    assert_eq!(site.shape, "8cpu/4-2-1", "cpu count plus cohorts per level");
    assert!(
        site.file.ends_with("profile_registry.rs"),
        "construction location must name user code, got {}",
        site.file
    );
    assert!(site.line < line_after_build);
    assert_eq!(site.generation, 0, "fresh registration, never adopted");
    assert_eq!(site.refs, 1);

    drop(lock);
    assert_eq!(
        registry::global().len(),
        baseline,
        "drop must release the slot back to the registry"
    );
}

#[test]
fn fastpath_site_is_gate_labelled_and_deregisters() {
    let _guard = serial();
    let baseline = registry::global().len();

    let hierarchy = build_regular(&[4]);
    let lock = FastClof::build_with(
        &hierarchy,
        &[LockKind::Ticket, LockKind::Ticket],
        ClofParams::default(),
    )
    .expect("composition builds");

    // The gate and the slow composition share one site, relabelled to
    // show the TAS fast path in profiler output.
    assert_eq!(registry::global().len(), baseline + 1);
    let site = registry::global()
        .site(lock.site_id())
        .expect("site is live while the lock is");
    assert!(
        site.label.starts_with("tas+"),
        "fast-path site label must carry the gate prefix, got {}",
        site.label
    );

    drop(lock);
    assert_eq!(registry::global().len(), baseline);
}

#[test]
fn contended_run_attributes_wait_and_hold_to_the_site() {
    let _guard = serial();

    let hierarchy = build_regular(&[2, 2]);
    let lock = Arc::new(
        DynClofLock::build_with(
            &hierarchy,
            &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
            ClofParams::default(),
            true,
        )
        .expect("composition builds"),
    );
    let before = clof::obs::profile::global().snapshot();

    let threads = 4;
    let iters = 200u64;
    let counter = Arc::new(Mutex::new(0u64));
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                let mut handle = lock.handle(tid);
                for _ in 0..iters {
                    handle.acquire();
                    *counter.lock().unwrap() += 1;
                    handle.release();
                }
            });
        }
    });
    assert_eq!(*counter.lock().unwrap(), threads as u64 * iters);

    let delta = clof::obs::profile::global().snapshot().delta(&before);
    let site = delta
        .sites
        .iter()
        .find(|s| s.id == lock.site_id())
        .expect("profiled site appears in the snapshot delta");
    assert_eq!(
        site.acquires,
        threads as u64 * iters,
        "every critical section is attributed exactly once"
    );
    assert!(site.holds > 0 && site.hold_ns > 0);
    assert!(site.waits > 0, "4 threads on one lock must wait");
    assert!(
        site.nodes.iter().any(|n| n.waits > 0),
        "per-(level,node) accumulators must see the contention"
    );
}

#[cfg(feature = "adapt")]
mod adapt_lifecycle {
    use super::{serial, Arc};
    use clof::obs::registry;
    use clof::{AdaptiveLock, ClofParams, LockKind};
    use clof_testkit::strategies::build_regular;

    /// Finalist shapes the swap matrix cycles through — mixed and
    /// homogeneous 3-level compositions, as in the adaptation tests.
    const SHAPES: [&[LockKind]; 4] = [
        &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Clh, LockKind::Ticket],
        &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
        &[LockKind::Clh, LockKind::Mcs, LockKind::Ticket],
    ];

    /// 64-seed adaptation-swap matrix: the site id never moves, the
    /// registry never grows past one live site for the adaptive lock,
    /// and dropping it returns the registry to baseline (zero leaks).
    #[test]
    fn swap_matrix_keeps_site_id_stable_and_leaks_nothing() {
        let _guard = serial();
        let baseline = registry::global().len();

        let hierarchy = build_regular(&[2, 4]);
        let lock = Arc::new(
            AdaptiveLock::with_params(&hierarchy, SHAPES[0], ClofParams::default(), true)
                .expect("adaptive lock builds"),
        );
        let site_id = lock.site_id();
        assert_eq!(
            registry::global().len(),
            baseline + 1,
            "both parity slots share the initial tree's single site"
        );

        let mut swaps_taken = 0u64;
        for seed in 0u64..64 {
            // Seeded walk over the finalist set; consecutive picks may
            // repeat, exercising the no-op swap path too.
            let pick = SHAPES[(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % SHAPES.len()];
            if lock.swap_to(pick).expect("swap builds") {
                swaps_taken += 1;
            }
            assert_eq!(
                lock.site_id(),
                site_id,
                "seed {seed}: adaptation swap must rebind, not re-register"
            );
            assert_eq!(
                registry::global().len(),
                baseline + 1,
                "seed {seed}: swap must not leak registry entries"
            );
            // Exercise the swapped-in tree so rebinding under load is
            // covered, not just the bookkeeping.
            let mut handle = lock.handle(seed as usize % hierarchy.ncpus());
            handle.acquire();
            handle.release();
        }
        assert!(swaps_taken >= 16, "matrix must actually swap, took {swaps_taken}");

        let site = registry::global().site(site_id).expect("site still live");
        assert_eq!(
            site.generation, swaps_taken,
            "every real swap bumps the adoption generation"
        );

        drop(lock);
        assert_eq!(
            registry::global().len(),
            baseline,
            "dropping the adaptive lock must free its single site"
        );
        assert!(
            registry::global().site(site_id).is_none(),
            "the slot must read as dead after release"
        );
    }

    /// A failed swap (unbuildable composition) must leave the registry
    /// untouched: no provisional site may leak from the aborted build.
    #[test]
    fn failed_swap_leaks_no_provisional_site() {
        let _guard = serial();
        let baseline = registry::global().len();

        let hierarchy = build_regular(&[2, 4]);
        let lock = AdaptiveLock::with_params(
            &hierarchy,
            SHAPES[0],
            ClofParams::default(),
            true,
        )
        .expect("adaptive lock builds");
        let site_id = lock.site_id();
        assert_eq!(registry::global().len(), baseline + 1);

        // Wrong arity for a 3-level hierarchy: the build inside swap_to
        // fails after the incoming tree would have registered.
        assert!(lock.swap_to(&[LockKind::Ticket]).is_err());
        assert_eq!(lock.site_id(), site_id);
        assert_eq!(
            registry::global().len(),
            baseline + 1,
            "aborted swap must roll its provisional registration back"
        );

        drop(lock);
        assert_eq!(registry::global().len(), baseline);
    }
}
