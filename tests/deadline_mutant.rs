//! Mutant-kill suite for the abandonment protocol: delete the
//! abandoned-node skip in the MCS release path and prove the suite
//! notices.
//!
//! The mutant (`clof_locks::deadline::mutant::delete_abandoned_skip`)
//! makes a releaser whose successor abandoned behave as if that
//! successor took the lock: the grant — and the whole queue behind the
//! abandoned node — is silently dropped. That is exactly the bug class
//! node abandonment risks: the timed-out waiter is gone, so nobody is
//! left to move the hand-off forward, and the lock wedges for good.
//!
//! The scenario is single-threaded and fully deterministic: MCS
//! contexts are per-handle, not per-thread, so one thread can hold
//! through one context and time out through another. Armed, the
//! post-release probe must time out against a wedged lock; disarmed,
//! the identical scenario reclaims the node (skip counter moves) and
//! the probe wins immediately.
//!
//! One `#[test]` on purpose: the mutant switch is process-global, so
//! the armed and control phases must run serially in their own binary.

#![cfg(feature = "deadline")]

use std::time::{Duration, Instant};

use clof_locks::deadline::{abandons, mutant, skips};
use clof_locks::{McsContext, McsLock, RawLock};

/// Runs holder → timed-out waiter → release → bounded probe on a fresh
/// MCS lock; returns whether the probe acquired.
fn abandon_then_release_then_probe(probe_budget: Duration) -> bool {
    let lock = McsLock::default();
    let mut holder = McsContext::default();
    let mut quitter = McsContext::default();
    let mut prober = McsContext::default();

    lock.acquire(&mut holder);
    let abandons_before = abandons();
    let won = lock.try_acquire_until(&mut quitter, Instant::now() + Duration::from_millis(5));
    assert!(!won, "the lock is held; the waiter must time out");
    assert!(
        abandons() > abandons_before,
        "the timed-out waiter must abandon its queue node"
    );

    // The release decides what to do with the abandoned successor —
    // this is the line the mutant deletes.
    lock.release(&mut holder);

    let probe_won = lock.try_acquire_until(&mut prober, Instant::now() + probe_budget);
    if probe_won {
        lock.release(&mut prober);
    }
    probe_won
}

#[test]
fn deleted_abandoned_skip_mutant_wedges_and_control_recovers() {
    // Phase 1 — mutant armed: the grant dies inside the abandoned node,
    // so the lock is wedged and a generously-budgeted probe times out.
    mutant::delete_abandoned_skip(true);
    let skips_before = skips();
    let probe_won = abandon_then_release_then_probe(Duration::from_millis(250));
    // Disarm before asserting, so a failure here can't poison later runs.
    mutant::delete_abandoned_skip(false);
    assert!(
        !probe_won,
        "deleted-skip mutant escaped: the probe acquired a lock whose \
         hand-off died in an abandoned node"
    );
    assert_eq!(
        skips(),
        skips_before,
        "the mutant deletes the skip, so no reclaim may be counted"
    );

    // Phase 2 — control, mutant disarmed: the identical scenario skips
    // and reclaims the abandoned node, and the probe wins at once.
    let skips_before = skips();
    let probe_won = abandon_then_release_then_probe(Duration::from_secs(5));
    assert!(
        probe_won,
        "healthy release must reclaim the abandoned node and free the lock"
    );
    assert!(
        skips() > skips_before,
        "the releaser-side reclaim must land in the skip counter"
    );
}
