//! Property tests for the log-bucketed latency histogram's edge cases,
//! driven by the in-repo `clof-testkit` engine: empty and single-sample
//! behaviour, power-of-two bucket boundaries, quantile laws, and merge
//! against combined recording.
//!
//! Run with `cargo test --features obs --test obs_hist_props`.

#![cfg(feature = "obs")]

use clof::obs::{HistSnapshot, LogHistogram};
use clof_testkit::gen::{any_u64, vec_of, Gen};
use clof_testkit::{props, tk_assert, tk_assert_eq, Config};

fn recorded(samples: &[u64]) -> HistSnapshot {
    let h = LogHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

props! {
    config: Config::with_cases(48);

    /// An empty histogram answers zero everywhere: count, mean, max, and
    /// every quantile (not a panic, not a garbage bucket bound).
    fn empty_histogram_is_all_zero(q in Gen::<u64>::int_range(0, 100)) {
        let snap = LogHistogram::new().snapshot();
        tk_assert_eq!(snap.count, 0);
        tk_assert_eq!(snap.mean(), 0);
        tk_assert_eq!(snap.max, 0);
        tk_assert_eq!(snap.quantile(q as f64 / 100.0), 0);
        tk_assert!(snap.cumulative().is_empty());
    }

    /// One sample is every statistic: any quantile of a single-sample
    /// histogram is the sample itself (the bucket upper bound is capped
    /// by the exact max), as are mean and max.
    fn single_sample_is_every_quantile(v in any_u64(), q in Gen::<u64>::int_range(0, 100)) {
        let snap = recorded(&[v]);
        tk_assert_eq!(snap.count, 1);
        tk_assert_eq!(snap.max, v);
        tk_assert_eq!(snap.mean(), v);
        tk_assert_eq!(snap.quantile(q as f64 / 100.0), v);
    }

    /// Power-of-two boundaries land exactly: `2^k` fills bucket `k`
    /// (whose inclusive upper bound it is) and `2^k + 1` spills into
    /// bucket `k + 1` — the `[2^(i-1), 2^i)` coverage contract.
    fn power_of_two_boundaries(k in Gen::<u64>::int_range(1, 62)) {
        let k = k as usize;
        let at = recorded(&[1u64 << k]);
        tk_assert_eq!(at.buckets[k], 1, "2^{} belongs to bucket {}", k, k);
        tk_assert_eq!(at.buckets.iter().sum::<u64>(), 1);
        let above = recorded(&[(1u64 << k) + 1]);
        tk_assert_eq!(above.buckets[k + 1], 1, "2^{} + 1 spills upward", k);
    }

    /// Quantiles are monotone in `q`, upper estimates of the data, and
    /// exact at the extremes: `quantile(1.0) == max` and every quantile
    /// is at least the smallest sample.
    fn quantile_laws(samples in vec_of(any_u64(), 1, 40)) {
        let snap = recorded(&samples);
        tk_assert_eq!(snap.count, samples.len() as u64);
        tk_assert_eq!(snap.max, *samples.iter().max().unwrap());
        tk_assert_eq!(snap.quantile(1.0), snap.max);
        let lo = snap.quantile(0.01);
        let mid = snap.quantile(0.5);
        let hi = snap.quantile(0.99);
        tk_assert!(lo <= mid && mid <= hi, "quantiles must be monotone");
        tk_assert!(hi <= snap.max, "estimates are capped by the exact max");
        tk_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    /// Merging two disjoint histograms equals recording both sample sets
    /// into one — bucket-exact, including count, sum, and max. Samples
    /// stay in the realistic nanosecond range (`merge` sums are checked
    /// arithmetic, and a century is only ~2^61 ns).
    fn merge_of_disjoint_matches_combined(
        a in vec_of(Gen::<u64>::int_range(0, 1 << 50), 0, 25),
        b in vec_of(Gen::<u64>::int_range(0, 1 << 50), 0, 25),
    ) {
        let mut merged = recorded(&a);
        merged.merge(&recorded(&b));
        let combined: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        tk_assert_eq!(merged, recorded(&combined));
    }
}
