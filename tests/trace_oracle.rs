//! Trace-vs-oracle cross-check: replays the schedule-fuzzing stress
//! oracle with the causal span tracer on, then holds the reconstructed
//! trace to what the oracle proved externally:
//!
//! * the ownership timeline (hold spans) is a total order — mutual
//!   exclusion as seen *by the trace*, checked with the testkit's
//!   plain-number `assert_total_order`;
//! * one hold span per oracle-counted acquisition (complete traces);
//! * pass-chain lengths respect the keep-local bound H on a 2-level
//!   stress run (the §4.1 starvation-freedom argument, observed).
//!
//! The tracer is process-global, so these tests serialize behind a
//! local mutex. Run with `cargo test --features obs --test trace_oracle`.

#![cfg(feature = "obs")]

use std::sync::{Arc, Mutex};

use clof::obs::{analyze, ownership_timeline, trace, Trace};
use clof::{ClofParams, DynClofLock, LockKind};
use clof_testkit::strategies::build_regular;
use clof_testkit::{assert_total_order, fuzz_seeds, seed_batch, StressOptions};

/// The tracer is process-global; tests take it one at a time.
static TRACER: Mutex<()> = Mutex::new(());

/// Fuzzes `kinds` over a regular hierarchy of `shape` with tracing on;
/// returns the recorded trace and the oracle's acquisition total.
fn traced_stress(
    kinds: &[LockKind],
    shape: &[usize],
    threads: usize,
    seeds: usize,
    iters: u64,
    threshold: u32,
) -> (Trace, u64) {
    let hierarchy = build_regular(shape);
    let params = ClofParams {
        keep_local_threshold: threshold,
    };
    let lock = Arc::new(
        DynClofLock::build_with(&hierarchy, kinds, params, true).expect("composition builds"),
    );
    let n = hierarchy.ncpus();
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads).collect();
    let opts = StressOptions {
        threads,
        iters,
        label: format!("trace:{}", lock.name()),
        ..StressOptions::default()
    };
    let seeds = seed_batch(0x7AC3_0AC1 ^ kinds.len() as u64, seeds);
    trace::enable(1 << 16);
    let shared = Arc::clone(&lock);
    let outcome = fuzz_seeds(&opts, &seeds, |_seed, tid| shared.handle(cpus[tid]));
    trace::disable();
    outcome.assert_passed();
    (trace::snapshot(), outcome.total_acquisitions)
}

#[test]
fn ownership_timeline_is_a_total_order_matching_the_oracle() {
    let _tracer = TRACER.lock().unwrap_or_else(|p| p.into_inner());
    let (recorded, total) = traced_stress(
        &[LockKind::Ticket, LockKind::Mcs, LockKind::Ticket],
        &[2, 4],
        4,
        3,
        40,
        128,
    );
    assert!(
        recorded.is_complete(),
        "buffers must be sized to capture the whole run ({} dropped)",
        recorded.dropped
    );
    let timeline = ownership_timeline(&recorded).expect("hold spans must not overlap");
    assert_eq!(
        timeline.len() as u64,
        total,
        "one hold span per oracle-counted acquisition"
    );
    let intervals: Vec<(u64, u64)> = timeline.iter().map(|&(s, e, _)| (s, e)).collect();
    assert_total_order(&intervals);
}

#[test]
fn pass_chains_respect_the_keep_local_bound() {
    let _tracer = TRACER.lock().unwrap_or_else(|p| p.into_inner());
    // The acceptance setup: a 2-level stress run against the default
    // H = 128, plus a tighter run where H actually binds.
    let (recorded, _) = traced_stress(
        &[LockKind::Ticket, LockKind::Ticket],
        &[4],
        4,
        2,
        150,
        128,
    );
    assert!(recorded.is_complete(), "{} dropped", recorded.dropped);
    let analysis = analyze(&recorded);
    analysis
        .check_chain_bound(128)
        .expect("H = 128 bound must hold on a complete trace");

    let (tight, _) = traced_stress(&[LockKind::Ticket, LockKind::Ticket], &[4], 4, 2, 150, 4);
    assert!(tight.is_complete(), "{} dropped", tight.dropped);
    let tight_analysis = analyze(&tight);
    tight_analysis
        .check_chain_bound(4)
        .expect("H = 4 bound must hold on a complete trace");
    assert!(
        tight_analysis.max_chain() <= 4,
        "max chain {} exceeds H = 4",
        tight_analysis.max_chain()
    );
}

#[test]
fn traced_wait_spans_cover_every_acquisition() {
    let _tracer = TRACER.lock().unwrap_or_else(|p| p.into_inner());
    let (recorded, total) = traced_stress(
        &[LockKind::Ticket, LockKind::Clh],
        &[4],
        4,
        2,
        60,
        128,
    );
    assert!(recorded.is_complete(), "{} dropped", recorded.dropped);
    let analysis = analyze(&recorded);
    // Level-0 wait spans are the innermost low-lock acquisitions: one
    // per lock round-trip, matching the oracle's external count.
    let l0 = analysis
        .levels
        .iter()
        .find(|l| l.level == 0)
        .expect("level 0 waits recorded");
    assert_eq!(l0.spans, total, "one L0 wait span per acquisition");
    assert_eq!(analysis.holds, total, "one hold span per acquisition");
}
