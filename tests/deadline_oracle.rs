//! Timeout/abandonment stress-oracle matrix for deadline-bounded
//! acquisition (`--features deadline`): 64 forced-injection seeds
//! across composition shapes × injection rates, plus the acceptance
//! bounds the feature promises.
//!
//! Asserted per run: mutual exclusion and the paper's §4.1 context
//! invariant (the base oracle's owner cell, torn-counter pair and
//! `ctx_busy` detector) *across abandoned queue nodes* — every worker
//! acquires through seeded bounded attempts, so each run walks
//! hundreds of abandon → skip/reclaim → re-enqueue edges; the exact
//! acquisition count proves every timed-out waiter recovered and
//! eventually won; and `queue_depth_hint() == 0` at quiescence proves
//! no abandonment leaked a queue position or a read-indicator count.
//! Companion cells rerun the matrix with parked (blocking) neighbours
//! under `park` and mid-migration under `adapt`.

#![cfg(feature = "deadline")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use clof::{ClofParams, DynClofLock, LockKind};
use clof_testkit::deadline::{fuzz_timeout_seeds, TimedHandle};
use clof_testkit::strategies::build_regular;
use clof_testkit::{seed_batch, StressOptions};
use clof_topology::Hierarchy;

const SEEDS_PER_CELL: usize = 16;
const THREADS: usize = 4;
const ITERS: u64 = 10;

/// One matrix cell: `SEEDS_PER_CELL` forced-injection runs of `shape`
/// on `hierarchy`, timeouts forced on ~`1/denom` of deadline polls.
/// Returns (timed-out attempts, forced fires) for the matrix-level
/// "abandonment actually happened" assertion.
fn timeout_cell(hierarchy: &Hierarchy, shape: &[LockKind], denom: u32, base: u64) -> (u64, u64) {
    let lock = Arc::new(
        DynClofLock::build_with(hierarchy, shape, ClofParams::default(), true)
            .expect("composition builds"),
    );
    let n = hierarchy.ncpus();
    let cpus: Vec<usize> = (0..THREADS).map(|t| t * n / THREADS % n).collect();
    let seeds = seed_batch(base, SEEDS_PER_CELL);
    let opts = StressOptions {
        threads: THREADS,
        iters: ITERS,
        // Forced timeouts are this matrix's perturbation; chaos delays
        // would stretch the bounded attempts past their budgets without
        // adding abandonment coverage.
        chaos_denom: 0,
        label: format!("deadline {}×1/{denom}", lock.name()),
        ..StressOptions::default()
    };
    let lock2 = Arc::clone(&lock);
    let outcome = fuzz_timeout_seeds(&opts, &seeds, denom, |seed, tid, timeouts| {
        TimedHandle::new(
            lock2.handle(cpus[tid]),
            seed ^ (tid as u64) << 32,
            150,
            Arc::clone(timeouts),
        )
    });
    outcome.assert_passed();
    assert_eq!(
        outcome.total_acquisitions,
        SEEDS_PER_CELL as u64 * THREADS as u64 * ITERS,
        "a timed-out waiter never recovered ({})",
        opts.label
    );
    assert_eq!(
        lock.queue_depth_hint(),
        0,
        "abandonment leaked a queue position or waiter count ({})",
        opts.label
    );
    (outcome.total_timeouts, outcome.total_forced_fires)
}

/// The 64-seed matrix: 4 cells × 16 seeds. Shapes cover every
/// abandonment protocol — MCS/CLH/Hemlock node abandonment, the
/// ticket/Anderson cancel-or-hand-forward slots, TTAS bounded retry —
/// at two injection rates.
#[test]
fn sixty_four_seed_timeout_abandon_matrix() {
    let abandons_before = clof_locks::deadline::abandons();
    let mut timeouts = 0u64;
    let mut fires = 0u64;
    for (hierarchy, shape, denom, base) in [
        (
            build_regular(&[2, 4]),
            &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket][..],
            2,
            0xD1ED_0001,
        ),
        (
            build_regular(&[2, 4]),
            &[LockKind::Anderson, LockKind::Hemlock, LockKind::Ttas][..],
            2,
            0xD1ED_0002,
        ),
        (
            build_regular(&[2]),
            &[LockKind::Ticket, LockKind::Ticket][..],
            3,
            0xD1ED_0003,
        ),
        (
            build_regular(&[2, 2, 2]),
            &[
                LockKind::Mcs,
                LockKind::Clh,
                LockKind::Backoff,
                LockKind::Ticket,
            ][..],
            3,
            0xD1ED_0004,
        ),
    ] {
        let (t, f) = timeout_cell(&hierarchy, shape, denom, base);
        timeouts += t;
        fires += f;
    }
    assert!(
        timeouts > 0 && fires > 0,
        "the matrix must actually exercise abandonment \
         (timeouts {timeouts}, forced fires {fires})"
    );
    assert!(
        clof_locks::deadline::abandons() > abandons_before,
        "waiter-side bailouts must land in the abandon counter"
    );
}

/// Acceptance bound: on a fully contended 3-level tree, a bounded
/// acquire returns within its budget plus one hand-off, leaves no
/// queue-node or waiter-count residue, and the next acquisition — both
/// the quitter's and a later thread's — succeeds.
#[test]
fn contended_timeout_is_bounded_and_leak_free() {
    let hierarchy = build_regular(&[2, 4]);
    let lock = Arc::new(
        DynClofLock::build(
            &hierarchy,
            &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        )
        .expect("composition builds"),
    );

    let mut holder = lock.handle(0);
    holder.acquire();

    let budget = Duration::from_millis(50);
    let waiter = {
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            let mut h = lock.handle(5); // cross-cohort: climbs every level
            let t0 = Instant::now();
            let won = h.try_acquire_for(budget);
            (won, t0.elapsed())
        })
    };
    let (won, elapsed) = waiter.join().expect("waiter must not panic");
    assert!(!won, "the tree is held for the whole budget");
    // "One hand-off" of slack: generous wall-clock bound so a loaded CI
    // host can't flake it, but tight enough that an unwound level that
    // re-blocked (the bug class) would blow through it.
    assert!(
        elapsed >= budget && elapsed < budget + Duration::from_secs(2),
        "timeout not bounded: budget {budget:?}, elapsed {elapsed:?}"
    );
    assert_eq!(
        lock.queue_depth_hint(),
        0,
        "the timed-out climb left queue or waiter-count residue"
    );

    holder.release();
    let mut quitter = lock.handle(5);
    assert!(
        quitter.try_acquire_for(Duration::from_secs(5)),
        "the quitter must be able to reacquire after its timeout"
    );
    quitter.release();
    let mut later = lock.handle(3);
    later.acquire();
    later.release();
    assert_eq!(lock.queue_depth_hint(), 0);
}

/// Poisoning end-to-end through the store wrapper: a panic while
/// holding marks the lock, bounded operations report `Poisoned`
/// instead of hanging, and `clear_poison` + `into_inner` recover.
#[test]
fn kvstore_poisoning_reports_instead_of_hanging() {
    use clof_kvstore::{DbMutex, LockChoice};

    let hierarchy = build_regular(&[2, 2]);
    let choice = LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]);
    let db = Arc::new(DbMutex::new(vec![1u32], &hierarchy, &choice).expect("builds"));

    let panicker = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let mut h = db.handle(0);
            h.with(|v: &mut Vec<u32>| {
                v.push(2);
                panic!("torn store op");
            })
        })
    };
    assert!(panicker.join().is_err(), "the op must actually panic");
    assert!(db.is_poisoned(), "panic-while-holding must poison");

    {
        let mut h = db.handle(1);
        let res = h.try_with_for(Duration::from_secs(5), |v: &mut Vec<u32>| v.len());
        assert_eq!(
            res,
            Err(clof::ClofError::Poisoned),
            "bounded ops must report poisoning, not hand out suspect data"
        );
    }

    db.clear_poison();
    {
        let mut h = db.handle(1);
        assert_eq!(
            h.try_with_for(Duration::from_secs(5), |v: &mut Vec<u32>| v.len()),
            Ok(2)
        );
    }
    // Handles hold `Arc` clones, so they must be gone before recovery
    // can take the data back.
    let db = Arc::try_unwrap(db).unwrap_or_else(|_| panic!("sole owner"));
    assert_eq!(db.into_inner(), vec![1, 2]);
}

/// Abandonment against *parked* neighbours: blocking waiters with a
/// zero spin budget sleep in the kernel while timed waiters abandon
/// around them. A stale abandoned node that swallowed a wake, or a
/// skip that bypassed a parked waiter, shows up as a lost wakeup (the
/// blocking waiter never finishes) or a stall panic.
#[cfg(feature = "park")]
#[test]
fn abandonment_with_parked_neighbours_loses_no_wakeups() {
    use clof_testkit::deadline::BlockingOrTimed;

    let hierarchy = build_regular(&[2, 4]);
    let shape = [LockKind::Mcs, LockKind::Clh, LockKind::Ticket];
    let lock = Arc::new(DynClofLock::build(&hierarchy, &shape).expect("builds"));
    for level in 0..shape.len() {
        lock.set_spin_budget(level, 0); // blocking waiters park at once
    }
    let n = hierarchy.ncpus();
    let threads = 6;
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads % n).collect();
    let seeds = seed_batch(0xD1ED_9A4C, 4);
    let opts = StressOptions {
        threads,
        iters: ITERS,
        chaos_denom: 0,
        label: "deadline×park mcs-clh-tkt".into(),
        ..StressOptions::default()
    };
    let parks_before = clof_locks::park::parks();
    let lock2 = Arc::clone(&lock);
    let outcome = fuzz_timeout_seeds(&opts, &seeds, 2, |seed, tid, timeouts| {
        if tid % 2 == 0 {
            BlockingOrTimed::Timed(TimedHandle::new(
                lock2.handle(cpus[tid]),
                seed ^ tid as u64,
                150,
                Arc::clone(timeouts),
            ))
        } else {
            BlockingOrTimed::Blocking(lock2.handle(cpus[tid]))
        }
    });
    outcome.assert_passed();
    assert_eq!(
        outcome.total_acquisitions,
        4 * threads as u64 * ITERS,
        "a parked waiter lost its wake across an abandonment"
    );
    assert!(outcome.total_timeouts > 0, "injection must force abandons");
    assert!(
        clof_locks::park::parks() > parks_before,
        "zero-budget blocking waiters must actually park"
    );
    assert_eq!(lock.queue_depth_hint(), 0);
}

/// Abandonment racing a hot-swap: timed waiters bail out of the baton
/// wait and out of freshly-installed trees while a background swapper
/// migrates the lock. A timed-out entrant that failed to deregister
/// (or to re-arm the handover baton) wedges the migration — caught by
/// the testkit's stall bound or the exact-count check.
#[cfg(feature = "adapt")]
#[test]
fn abandonment_mid_migration_keeps_swaps_and_counts() {
    use clof::adapt::AdaptiveLock;
    use clof_testkit::deadline::with_forced_timeouts;
    use clof_testkit::{run_stress, with_forced_swaps, SwapPlan};

    let hierarchy = build_regular(&[2, 4]);
    let shapes: [&[LockKind]; 2] = [
        &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
        &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
    ];
    let plan = SwapPlan {
        pause_yields: 8,
        ..SwapPlan::cycling(&shapes)
    };
    let n = hierarchy.ncpus();
    let threads = 4;
    let cpus: Vec<usize> = (0..threads).map(|t| t * n / threads % n).collect();
    let timeouts = Arc::new(AtomicU64::new(0));
    let seed = 0xD1ED_ADA7u64;
    let lock = Arc::new(AdaptiveLock::new(&hierarchy, shapes[0]).expect("builds"));
    let opts = StressOptions {
        threads,
        iters: 40,
        seed,
        chaos_denom: 0,
        label: "deadline×adapt".into(),
        ..StressOptions::default()
    };
    let ((report, swaps), fires) = with_forced_timeouts(seed, 3, || {
        with_forced_swaps(&lock, seed, &plan, || {
            run_stress(&opts, |tid| {
                TimedHandle::new(
                    lock.handle(cpus[tid]),
                    seed ^ tid as u64,
                    200,
                    Arc::clone(&timeouts),
                )
            })
        })
    });
    assert!(report.passed(), "{}", report.render());
    assert_eq!(
        report.total_acquisitions,
        threads as u64 * 40,
        "a timed-out entrant wedged the migration protocol"
    );
    assert!(swaps > 0, "the swapper must land migrations mid-run");
    assert!(fires > 0, "injection must fire during the migration run");
    assert!(
        timeouts.load(Ordering::Relaxed) > 0,
        "timed waiters must actually abandon mid-migration"
    );
}

/// Property over shrinkable injection schedules: any (seed, denom,
/// budget) plan holds the oracle's invariants on the induction-step
/// shape. On failure the runner shrinks toward the mildest schedule
/// that still breaks, and prints a replayable seed.
#[test]
fn any_injection_schedule_holds_invariants() {
    use clof_testkit::check::{check_with, Config};
    use clof_testkit::deadline::{ForcedTimeoutPlan, with_forced_timeouts};
    use clof_testkit::run_stress;

    let hierarchy = build_regular(&[2, 2]);
    check_with(
        &Config {
            cases: 6,
            seed: 0xD1ED_5EED,
            max_shrink_evals: 24,
        },
        "any_injection_schedule_holds_invariants",
        &ForcedTimeoutPlan::gen(),
        |plan| {
            let lock = Arc::new(
                DynClofLock::build(
                    &hierarchy,
                    &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
                )
                .expect("builds"),
            );
            let timeouts = Arc::new(AtomicU64::new(0));
            let opts = StressOptions {
                threads: 3,
                iters: 8,
                seed: plan.seed,
                chaos_denom: 0,
                label: "deadline plan prop".into(),
                ..StressOptions::default()
            };
            let (report, _fires) = with_forced_timeouts(plan.seed, plan.denom, || {
                run_stress(&opts, |tid| {
                    TimedHandle::new(
                        lock.handle(tid % hierarchy.ncpus()),
                        plan.seed ^ tid as u64,
                        plan.budget_micros,
                        Arc::clone(&timeouts),
                    )
                })
            });
            if !report.passed() {
                return Err(report.render());
            }
            if lock.queue_depth_hint() != 0 {
                return Err(format!(
                    "waiter-count leak: queue_depth_hint {} after quiescence",
                    lock.queue_depth_hint()
                ));
            }
            Ok(())
        },
    );
}
